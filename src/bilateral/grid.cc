#include "bilateral/grid.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "exec/parallel.hh"

namespace incam {

namespace {

/**
 * Row bands for the splat accumulators. The band structure must depend
 * only on the image and the grain — never on the thread count — so the
 * band-order merge gives bit-identical results at any parallelism. The
 * cap bounds the per-band partial-grid memory.
 */
constexpr int kMaxSplatBands = 8;

int
splatBandRows(int height, const ExecPolicy &pol)
{
    const int cap_rows = (height + kMaxSplatBands - 1) / kMaxSplatBands;
    return std::max({1, pol.grain, cap_rows});
}

/** Per-column interpolation terms, hoisted out of the row loops. */
struct AxisLut
{
    std::vector<int> lo;
    std::vector<float> t;

    AxisLut(int n, float inv_cell, int grid_n)
    {
        lo.resize(n);
        t.resize(n);
        for (int i = 0; i < n; ++i) {
            const float f = static_cast<float>(i) * inv_cell;
            const int i0 = std::min(static_cast<int>(f), grid_n - 2);
            lo[i] = i0;
            t[i] = f - static_cast<float>(i0);
        }
    }
};

/**
 * Trilinear sampling geometry shared by splat and slice — one place
 * computes the flat vertex offsets and the 8 per-pixel weights, so the
 * two kernels can never sample different vertices or weights.
 */
struct TrilinearGeom
{
    AxisLut xlut;
    AxisLut ylut;
    float bins;
    int nz;
    size_t sy;
    size_t sz;
    size_t off[8]; ///< flat offsets of the cell's 8 vertices

    TrilinearGeom(int w, int h, double cell, int gx, int gy, int gz)
        : xlut(w, static_cast<float>(1.0 / cell), gx),
          ylut(h, static_cast<float>(1.0 / cell), gy),
          bins(static_cast<float>(gz - 1)), nz(gz),
          sy(static_cast<size_t>(gx)),
          sz(static_cast<size_t>(gx) * gy),
          off{0, 1, sy, sy + 1, sz, sz + 1, sz + sy, sz + sy + 1}
    {
    }

    /**
     * Weights and base vertex index for pixel (x, y) with guide
     * intensity @p g. Fills wv[8] matching off[8].
     */
    size_t
    vertexWeights(int x, int y, float g, float wv[8]) const
    {
        const float fz = std::clamp(g, 0.0f, 1.0f) * bins;
        const int z0 = std::min(static_cast<int>(fz), nz - 2);
        const float tz = fz - static_cast<float>(z0);
        const float tx = xlut.t[x];
        const float ty = ylut.t[y];
        const float wx0 = 1.0f - tx;
        const float wy0 = 1.0f - ty;
        const float wz0 = 1.0f - tz;

        const float wy0z0 = wy0 * wz0;
        const float wy1z0 = ty * wz0;
        const float wy0z1 = wy0 * tz;
        const float wy1z1 = ty * tz;
        wv[0] = wx0 * wy0z0;
        wv[1] = tx * wy0z0;
        wv[2] = wx0 * wy1z0;
        wv[3] = tx * wy1z0;
        wv[4] = wx0 * wy0z1;
        wv[5] = tx * wy0z1;
        wv[6] = wx0 * wy1z1;
        wv[7] = tx * wy1z1;
        return static_cast<size_t>(z0) * sz +
               static_cast<size_t>(ylut.lo[y]) * sy + xlut.lo[x];
    }
};

} // namespace

BilateralGrid::BilateralGrid(int image_w, int image_h, double cell_spatial,
                             int range_bins)
    : cell(cell_spatial)
{
    incam_assert(image_w > 0 && image_h > 0, "bad image size");
    incam_assert(cell_spatial >= 1.0, "spatial cell must be >= 1 px");
    incam_assert(range_bins >= 2, "need >= 2 range bins");
    // +1 so the last pixel/intensity has an upper interpolation vertex.
    nx = static_cast<int>(std::ceil(image_w / cell_spatial)) + 1;
    ny = static_cast<int>(std::ceil(image_h / cell_spatial)) + 1;
    nz = range_bins + 1;
    val.assign(vertexCount(), 0.0f);
    wgt.assign(vertexCount(), 0.0f);
}

void
BilateralGrid::splat(const ImageF &guide, const ImageF &value,
                     const ImageF *confidence, GridOpCounts *ops,
                     const ExecPolicy &pol)
{
    incam_assert(guide.channels() == 1 && value.channels() == 1,
                 "splat expects single-channel images");
    incam_assert(guide.sameShape(value), "guide/value shape mismatch");
    if (confidence) {
        incam_assert(guide.sameShape(*confidence),
                     "confidence shape mismatch");
    }

    const int w = guide.width();
    const int h = guide.height();
    const TrilinearGeom geom(w, h, cell, nx, ny, nz);

    const size_t verts = vertexCount();
    ExecPolicy band_pol = pol;
    band_pol.grain = splatBandRows(h, pol);
    const uint64_t bands = parallel_chunk_count(0, h, band_pol);

    // One band's pixels accumulated into a zeroed partial grid.
    auto splatBand = [&](float *bv, float *bw, int64_t y0, int64_t y1) {
        for (int64_t row = y0; row < y1; ++row) {
            const int y = static_cast<int>(row);
            for (int x = 0; x < w; ++x) {
                float wv[8];
                const size_t base =
                    geom.vertexWeights(x, y, guide.at(x, y), wv);
                const float c = confidence ? confidence->at(x, y) : 1.0f;
                const float v = value.at(x, y) * c;
                for (int k = 0; k < 8; ++k) {
                    bv[base + geom.off[k]] += v * wv[k];
                    bw[base + geom.off[k]] += c * wv[k];
                }
            }
        }
    };
    auto mergeBand = [&](const float *bv, const float *bw) {
        for (size_t i = 0; i < verts; ++i) {
            val[i] += bv[i];
            wgt[i] += bw[i];
        }
    };

    if (pol.resolveThreads() <= 1 || bands <= 1) {
        // Serial: one reusable scratch pair, bands merged as they
        // finish — the same band-order floating-point grouping as the
        // parallel path at a fraction of its transient memory. Chunks
        // run inline in order here, so the in-place merge is safe, and
        // routing through parallel_for_chunks keeps both paths on the
        // exact same chunk geometry.
        std::vector<float> scratch_val;
        std::vector<float> scratch_wgt;
        parallel_for_chunks(
            0, h, band_pol, [&](uint64_t, int64_t y0, int64_t y1) {
                scratch_val.assign(verts, 0.0f);
                scratch_wgt.assign(verts, 0.0f);
                splatBand(scratch_val.data(), scratch_wgt.data(), y0, y1);
                mergeBand(scratch_val.data(), scratch_wgt.data());
            });
    } else {
        // Parallel: per-band partial grids so bands never race on
        // shared vertices, merged in band order below.
        std::vector<std::vector<float>> band_val(bands);
        std::vector<std::vector<float>> band_wgt(bands);
        parallel_for_chunks(
            0, h, band_pol, [&](uint64_t band, int64_t y0, int64_t y1) {
                band_val[band].assign(verts, 0.0f);
                band_wgt[band].assign(verts, 0.0f);
                splatBand(band_val[band].data(), band_wgt[band].data(),
                          y0, y1);
            });
        for (uint64_t band = 0; band < bands; ++band) {
            mergeBand(band_val[band].data(), band_wgt[band].data());
        }
    }

    if (ops) {
        // 8 vertices x 2 channels x (1 mul + 1 add) + weight products.
        ops->splat_ops += static_cast<uint64_t>(guide.pixelCount()) * 40;
    }
}

void
BilateralGrid::blur(GridOpCounts *ops, const ExecPolicy &pol)
{
    // Separable [1 2 1] / 4 along x, then y, then z, with clamped ends.
    // Each pass is a pure map from the previous arrays, so any row
    // partitioning yields bit-identical output.
    std::vector<float> new_val(val.size());
    std::vector<float> new_wgt(wgt.size());
    auto pass = [&](int axis) {
        const int dims[3] = {nx, ny, nz};
        const size_t strides[3] = {1, static_cast<size_t>(nx),
                                   static_cast<size_t>(nx) * ny};
        const int n = dims[axis];
        const size_t stride = strides[axis];
        const int64_t planes = static_cast<int64_t>(ny) * nz;
        parallel_for(0, planes, pol, [&](int64_t p0, int64_t p1) {
            for (int64_t p = p0; p < p1; ++p) {
                const int j = static_cast<int>(p % ny);
                const int k = static_cast<int>(p / ny);
                size_t idx = index(0, j, k);
                for (int i = 0; i < nx; ++i, ++idx) {
                    const int pos = axis == 0 ? i : axis == 1 ? j : k;
                    const size_t lo = pos > 0 ? idx - stride : idx;
                    const size_t hi = pos < n - 1 ? idx + stride : idx;
                    new_val[idx] = 0.25f * (val[lo] + 2.0f * val[idx] +
                                            val[hi]);
                    new_wgt[idx] = 0.25f * (wgt[lo] + 2.0f * wgt[idx] +
                                            wgt[hi]);
                }
            }
        });
        val.swap(new_val);
        wgt.swap(new_wgt);
    };
    pass(0);
    pass(1);
    pass(2);
    if (ops) {
        ops->blur_vertex_visits += vertexCount() * 3;
    }
}

ImageF
BilateralGrid::slice(const ImageF &guide, float fallback, GridOpCounts *ops,
                     const ExecPolicy &pol) const
{
    incam_assert(guide.channels() == 1, "slice expects a grayscale guide");
    const int w = guide.width();
    const int h = guide.height();
    ImageF out(w, h, 1);
    const TrilinearGeom geom(w, h, cell, nx, ny, nz);
    const float *vals = val.data();
    const float *wgts = wgt.data();

    // Pixels are independent reads: parallel over rows, bit-identical
    // at any partitioning.
    parallel_for(0, h, pol, [&](int64_t y0, int64_t y1) {
        for (int64_t row = y0; row < y1; ++row) {
            const int y = static_cast<int>(row);
            for (int x = 0; x < w; ++x) {
                float wv[8];
                const size_t base =
                    geom.vertexWeights(x, y, guide.at(x, y), wv);
                float acc_v = 0.0f;
                float acc_w = 0.0f;
                for (int k = 0; k < 8; ++k) {
                    acc_v += wv[k] * vals[base + geom.off[k]];
                    acc_w += wv[k] * wgts[base + geom.off[k]];
                }
                out.at(x, y) = acc_w > 1e-9f ? acc_v / acc_w : fallback;
            }
        }
    });
    if (ops) {
        ops->slice_ops += static_cast<uint64_t>(guide.pixelCount()) * 35;
    }
    return out;
}

void
BilateralGrid::blendData(const BilateralGrid &data, double lambda)
{
    incam_assert(nx == data.nx && ny == data.ny && nz == data.nz,
                 "grid shape mismatch in blendData");
    incam_assert(lambda >= 0.0, "negative data weight");
    const float l = static_cast<float>(lambda);
    for (size_t i = 0; i < val.size(); ++i) {
        val[i] += l * data.val[i];
        wgt[i] += l * data.wgt[i];
    }
}

float
BilateralGrid::vertexValue(int i, int j, int k) const
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    return val[index(i, j, k)];
}

float
BilateralGrid::vertexWeight(int i, int j, int k) const
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    return wgt[index(i, j, k)];
}

void
BilateralGrid::setVertex(int i, int j, int k, float value_times_weight,
                         float weight)
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    val[index(i, j, k)] = value_times_weight;
    wgt[index(i, j, k)] = weight;
}

} // namespace incam
