#include "bilateral/grid.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace incam {

BilateralGrid::BilateralGrid(int image_w, int image_h, double cell_spatial,
                             int range_bins)
    : cell(cell_spatial)
{
    incam_assert(image_w > 0 && image_h > 0, "bad image size");
    incam_assert(cell_spatial >= 1.0, "spatial cell must be >= 1 px");
    incam_assert(range_bins >= 2, "need >= 2 range bins");
    // +1 so the last pixel/intensity has an upper interpolation vertex.
    nx = static_cast<int>(std::ceil(image_w / cell_spatial)) + 1;
    ny = static_cast<int>(std::ceil(image_h / cell_spatial)) + 1;
    nz = range_bins + 1;
    val.assign(vertexCount(), 0.0f);
    wgt.assign(vertexCount(), 0.0f);
}

void
BilateralGrid::splat(const ImageF &guide, const ImageF &value,
                     const ImageF *confidence, GridOpCounts *ops)
{
    incam_assert(guide.channels() == 1 && value.channels() == 1,
                 "splat expects single-channel images");
    incam_assert(guide.sameShape(value), "guide/value shape mismatch");
    if (confidence) {
        incam_assert(guide.sameShape(*confidence),
                     "confidence shape mismatch");
    }

    const int bins = nz - 1;
    for (int y = 0; y < guide.height(); ++y) {
        for (int x = 0; x < guide.width(); ++x) {
            const float g = std::clamp(guide.at(x, y), 0.0f, 1.0f);
            const double fx = x / cell;
            const double fy = y / cell;
            const double fz = static_cast<double>(g) * bins;
            const int x0 = std::min(static_cast<int>(fx), nx - 2);
            const int y0 = std::min(static_cast<int>(fy), ny - 2);
            const int z0 = std::min(static_cast<int>(fz), nz - 2);
            const double tx = fx - x0;
            const double ty = fy - y0;
            const double tz = fz - z0;

            const float c = confidence ? confidence->at(x, y) : 1.0f;
            const float v = value.at(x, y) * c;

            for (int dz = 0; dz < 2; ++dz) {
                const double wz = dz ? tz : 1.0 - tz;
                for (int dy = 0; dy < 2; ++dy) {
                    const double wy = dy ? ty : 1.0 - ty;
                    for (int dx = 0; dx < 2; ++dx) {
                        const double wx = dx ? tx : 1.0 - tx;
                        const float w = static_cast<float>(wx * wy * wz);
                        const size_t idx =
                            index(x0 + dx, y0 + dy, z0 + dz);
                        val[idx] += v * w;
                        wgt[idx] += c * w;
                    }
                }
            }
        }
    }
    if (ops) {
        // 8 vertices x 2 channels x (1 mul + 1 add) + weight products.
        ops->splat_ops += static_cast<uint64_t>(guide.pixelCount()) * 40;
    }
}

void
BilateralGrid::blur(GridOpCounts *ops)
{
    // Separable [1 2 1] / 4 along x, then y, then z, with clamped ends.
    auto pass = [&](int axis) {
        std::vector<float> new_val(val.size());
        std::vector<float> new_wgt(wgt.size());
        const int dims[3] = {nx, ny, nz};
        const size_t strides[3] = {1, static_cast<size_t>(nx),
                                   static_cast<size_t>(nx) * ny};
        const int n = dims[axis];
        const size_t stride = strides[axis];
        for (int k = 0; k < nz; ++k) {
            for (int j = 0; j < ny; ++j) {
                for (int i = 0; i < nx; ++i) {
                    const size_t idx = index(i, j, k);
                    const int pos = axis == 0 ? i : axis == 1 ? j : k;
                    const size_t lo = pos > 0 ? idx - stride : idx;
                    const size_t hi = pos < n - 1 ? idx + stride : idx;
                    new_val[idx] = 0.25f * (val[lo] + 2.0f * val[idx] +
                                            val[hi]);
                    new_wgt[idx] = 0.25f * (wgt[lo] + 2.0f * wgt[idx] +
                                            wgt[hi]);
                }
            }
        }
        val.swap(new_val);
        wgt.swap(new_wgt);
    };
    pass(0);
    pass(1);
    pass(2);
    if (ops) {
        ops->blur_vertex_visits += vertexCount() * 3;
    }
}

ImageF
BilateralGrid::slice(const ImageF &guide, float fallback,
                     GridOpCounts *ops) const
{
    incam_assert(guide.channels() == 1, "slice expects a grayscale guide");
    ImageF out(guide.width(), guide.height(), 1);
    const int bins = nz - 1;
    for (int y = 0; y < guide.height(); ++y) {
        for (int x = 0; x < guide.width(); ++x) {
            const float g = std::clamp(guide.at(x, y), 0.0f, 1.0f);
            const double fx = x / cell;
            const double fy = y / cell;
            const double fz = static_cast<double>(g) * bins;
            const int x0 = std::min(static_cast<int>(fx), nx - 2);
            const int y0 = std::min(static_cast<int>(fy), ny - 2);
            const int z0 = std::min(static_cast<int>(fz), nz - 2);
            const double tx = fx - x0;
            const double ty = fy - y0;
            const double tz = fz - z0;

            double acc_v = 0.0;
            double acc_w = 0.0;
            for (int dz = 0; dz < 2; ++dz) {
                const double wz = dz ? tz : 1.0 - tz;
                for (int dy = 0; dy < 2; ++dy) {
                    const double wy = dy ? ty : 1.0 - ty;
                    for (int dx = 0; dx < 2; ++dx) {
                        const double wx = dx ? tx : 1.0 - tx;
                        const double w = wx * wy * wz;
                        const size_t idx =
                            index(x0 + dx, y0 + dy, z0 + dz);
                        acc_v += w * val[idx];
                        acc_w += w * wgt[idx];
                    }
                }
            }
            out.at(x, y) = acc_w > 1e-9
                               ? static_cast<float>(acc_v / acc_w)
                               : fallback;
        }
    }
    if (ops) {
        ops->slice_ops += static_cast<uint64_t>(guide.pixelCount()) * 35;
    }
    return out;
}

void
BilateralGrid::blendData(const BilateralGrid &data, double lambda)
{
    incam_assert(nx == data.nx && ny == data.ny && nz == data.nz,
                 "grid shape mismatch in blendData");
    incam_assert(lambda >= 0.0, "negative data weight");
    const float l = static_cast<float>(lambda);
    for (size_t i = 0; i < val.size(); ++i) {
        val[i] += l * data.val[i];
        wgt[i] += l * data.wgt[i];
    }
}

float
BilateralGrid::vertexValue(int i, int j, int k) const
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    return val[index(i, j, k)];
}

float
BilateralGrid::vertexWeight(int i, int j, int k) const
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    return wgt[index(i, j, k)];
}

void
BilateralGrid::setVertex(int i, int j, int k, float value_times_weight,
                         float weight)
{
    incam_assert(i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz,
                 "vertex (", i, ",", j, ",", k, ") out of grid");
    val[index(i, j, k)] = value_times_weight;
    wgt[index(i, j, k)] = weight;
}

} // namespace incam
