#include "bilateral/bilateral_filter.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace incam {

ImageF
bilateralFilterReference(const ImageF &in, double sigma_spatial,
                         double sigma_range)
{
    incam_assert(in.channels() == 1, "expects grayscale input");
    incam_assert(sigma_spatial > 0.0 && sigma_range > 0.0, "bad sigmas");
    const int radius =
        std::max(1, static_cast<int>(std::ceil(2.5 * sigma_spatial)));
    ImageF out(in.width(), in.height(), 1);
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            const double center = in.at(x, y);
            double acc = 0.0;
            double norm = 0.0;
            for (int dy = -radius; dy <= radius; ++dy) {
                for (int dx = -radius; dx <= radius; ++dx) {
                    const double v = in.atClamped(x + dx, y + dy);
                    const double ds = (dx * dx + dy * dy) /
                                      (2.0 * sigma_spatial * sigma_spatial);
                    const double dr = (v - center) * (v - center) /
                                      (2.0 * sigma_range * sigma_range);
                    const double w = std::exp(-ds - dr);
                    acc += w * v;
                    norm += w;
                }
            }
            out.at(x, y) = static_cast<float>(acc / norm);
        }
    }
    return out;
}

ImageF
bilateralFilterGrid(const ImageF &in, double cell_spatial, int range_bins,
                    int blur_iterations, GridOpCounts *ops,
                    const ExecPolicy &pol)
{
    BilateralGrid grid(in.width(), in.height(), cell_spatial, range_bins);
    grid.splat(in, in, nullptr, ops, pol);
    for (int i = 0; i < blur_iterations; ++i) {
        grid.blur(ops, pol);
    }
    return grid.slice(in, 0.0f, ops, pol);
}

std::vector<float>
makeNoisyStep(int n, float lo, float hi, float noise, uint64_t seed)
{
    incam_assert(n >= 4, "signal too short");
    Rng rng(seed);
    std::vector<float> out(n);
    for (int i = 0; i < n; ++i) {
        const float base = i < n / 2 ? lo : hi;
        out[i] = base + static_cast<float>(rng.gaussian(0.0, noise));
    }
    return out;
}

std::vector<float>
movingAverage1d(const std::vector<float> &in, int radius)
{
    incam_assert(radius >= 1, "radius must be >= 1");
    std::vector<float> out(in.size());
    const int n = static_cast<int>(in.size());
    for (int i = 0; i < n; ++i) {
        double acc = 0.0;
        int count = 0;
        for (int d = -radius; d <= radius; ++d) {
            const int j = std::clamp(i + d, 0, n - 1);
            acc += in[static_cast<size_t>(j)];
            ++count;
        }
        out[static_cast<size_t>(i)] = static_cast<float>(acc / count);
    }
    return out;
}

std::vector<float>
bilateralFilter1d(const std::vector<float> &in, double cell_spatial,
                  int range_bins, int blur_iterations)
{
    // Reuse the 2-D grid machinery with a 1-pixel-high image.
    ImageF img(static_cast<int>(in.size()), 1, 1);
    for (size_t i = 0; i < in.size(); ++i) {
        img.at(static_cast<int>(i), 0) = std::clamp(in[i], 0.0f, 1.0f);
    }
    const ImageF filtered =
        bilateralFilterGrid(img, cell_spatial, range_bins, blur_iterations);
    std::vector<float> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        out[i] = filtered.at(static_cast<int>(i), 0);
    }
    return out;
}

double
stepEdgeError(const std::vector<float> &filtered, float lo, float hi)
{
    const int n = static_cast<int>(filtered.size());
    const int edge = n / 2;
    const int band = std::max(2, n / 10);
    double acc = 0.0;
    int count = 0;
    for (int i = edge - band; i < edge + band; ++i) {
        if (i < 0 || i >= n) {
            continue;
        }
        const float truth = i < edge ? lo : hi;
        acc += std::fabs(filtered[static_cast<size_t>(i)] - truth);
        ++count;
    }
    return count ? acc / count : 0.0;
}

} // namespace incam
