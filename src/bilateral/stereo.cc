#include "bilateral/stereo.hh"

#include <cmath>

#include "common/logging.hh"
#include "exec/parallel.hh"

namespace incam {

BssaStereo::BssaStereo(BssaConfig cfg) : conf(cfg)
{
    incam_assert(conf.max_disparity >= 1, "disparity range must be >= 1");
    incam_assert(conf.block_radius >= 0, "negative block radius");
    incam_assert(conf.solver_iterations >= 1, "need >= 1 solver iteration");
    incam_assert(conf.range_bins >= 2, "need >= 2 range bins");
    incam_assert(conf.cell_spatial >= 1.0, "cell must be >= 1 px");
}

void
BssaStereo::wtaDisparity(const ImageF &left, const ImageF &right,
                         ImageF &disparity, ImageF &confidence,
                         uint64_t *matching_ops) const
{
    incam_assert(left.sameShape(right), "stereo pair shape mismatch");
    incam_assert(left.channels() == 1, "stereo expects grayscale views");

    const int w = left.width();
    const int h = left.height();
    const int r = conf.block_radius;
    disparity = ImageF(w, h, 1);
    confidence = ImageF(w, h, 1);

    // Each output pixel is independent: row-parallel, bit-identical at
    // any partitioning.
    parallel_for(0, h, conf.exec, [&](int64_t row0, int64_t row1) {
        for (int y = static_cast<int>(row0); y < row1; ++y) {
            for (int x = 0; x < w; ++x) {
                double best = 1e30;
                double second = 1e30;
                int best_d = 0;
                const int d_max = std::min(conf.max_disparity, x);
                for (int d = 0; d <= d_max; ++d) {
                    double sad = 0.0;
                    for (int dy = -r; dy <= r; ++dy) {
                        for (int dx = -r; dx <= r; ++dx) {
                            const float lv = left.atClamped(x + dx, y + dy);
                            const float rv =
                                right.atClamped(x - d + dx, y + dy);
                            sad += std::fabs(lv - rv);
                        }
                    }
                    if (sad < best) {
                        second = best;
                        best = sad;
                        best_d = d;
                    } else if (sad < second) {
                        second = sad;
                    }
                }
                disparity.at(x, y) = static_cast<float>(best_d);
                // Peak-ratio confidence: decisive minima are trustworthy.
                const double taps = (2.0 * r + 1.0) * (2.0 * r + 1.0);
                const double margin = (second - best) / taps;
                confidence.at(x, y) = static_cast<float>(
                    std::clamp(margin * 12.0, 0.02, 1.0));
            }
        }
    });
    if (matching_ops) {
        const double taps = (2.0 * r + 1.0) * (2.0 * r + 1.0);
        *matching_ops += static_cast<uint64_t>(
            static_cast<double>(w) * h * (conf.max_disparity + 1) * taps *
            3.0); // sub, abs, accumulate
    }
}

ImageF
BssaStereo::refine(const ImageF &guide, const ImageF &noisy,
                   const ImageF &confidence, size_t *vertices,
                   GridOpCounts *ops) const
{
    // Normalize disparity into [0, 1] for grid storage.
    const float inv_range = 1.0f / static_cast<float>(conf.max_disparity);
    ImageF normalized(noisy.width(), noisy.height(), 1);
    for (int y = 0; y < noisy.height(); ++y) {
        for (int x = 0; x < noisy.width(); ++x) {
            normalized.at(x, y) = noisy.at(x, y) * inv_range;
        }
    }

    // Data grid: splatted once, re-attached every round.
    BilateralGrid data(guide.width(), guide.height(), conf.cell_spatial,
                       conf.range_bins);
    data.splat(guide, normalized, &confidence, ops, conf.exec);
    if (vertices) {
        *vertices = data.vertexCount();
    }

    BilateralGrid solution = data;
    for (int it = 0; it < conf.solver_iterations; ++it) {
        solution.blur(ops, conf.exec);
        solution.blendData(data, conf.data_lambda);
    }

    ImageF sliced = solution.slice(guide, 0.0f, ops, conf.exec);
    for (int y = 0; y < sliced.height(); ++y) {
        for (int x = 0; x < sliced.width(); ++x) {
            sliced.at(x, y) = std::clamp(
                sliced.at(x, y) * static_cast<float>(conf.max_disparity),
                0.0f, static_cast<float>(conf.max_disparity));
        }
    }
    return sliced;
}

BssaResult
BssaStereo::compute(const ImageF &left, const ImageF &right) const
{
    BssaResult res;
    wtaDisparity(left, right, res.raw_disparity, res.confidence,
                 &res.ops.matching_ops);
    res.disparity = refine(left, res.raw_disparity, res.confidence,
                           &res.grid_vertices, &res.ops.grid);
    return res;
}

} // namespace incam
