/**
 * @file
 * Edge-aware filtering: brute-force bilateral filter and its
 * grid-accelerated equivalent (the Fig. 6 demonstration).
 *
 * The brute-force implementation is the O(pixels x window) reference the
 * grid version is validated against; the grid version is the O(pixels +
 * vertices) form the accelerator implements. A 1-D helper reproduces the
 * exact experiment of Fig. 6: a noisy step edge smoothed by a moving
 * average (edge destroyed) vs a bilateral filter (edge preserved).
 */

#ifndef INCAM_BILATERAL_BILATERAL_FILTER_HH
#define INCAM_BILATERAL_BILATERAL_FILTER_HH

#include <vector>

#include "bilateral/grid.hh"

namespace incam {

/** Gaussian-weighted brute-force bilateral filter (reference). */
ImageF bilateralFilterReference(const ImageF &in, double sigma_spatial,
                                double sigma_range);

/**
 * Grid-accelerated bilateral filter: splat -> blur^iterations -> slice.
 * Approximates the reference with cell sizes ~= the sigmas.
 */
ImageF bilateralFilterGrid(const ImageF &in, double cell_spatial,
                           int range_bins, int blur_iterations = 1,
                           GridOpCounts *ops = nullptr,
                           const ExecPolicy &pol = ExecPolicy::serial());

/** A noisy 1-D step signal like Fig. 6a. */
std::vector<float> makeNoisyStep(int n, float lo, float hi, float noise,
                                 uint64_t seed);

/** 1-D moving average (Fig. 6b). */
std::vector<float> movingAverage1d(const std::vector<float> &in, int radius);

/** 1-D bilateral filter via a 2-D (position x intensity) grid (Fig. 6d). */
std::vector<float> bilateralFilter1d(const std::vector<float> &in,
                                     double cell_spatial, int range_bins,
                                     int blur_iterations = 1);

/**
 * Edge fidelity score: mean absolute error against the clean step,
 * measured only near the edge. Lower is better; the bilateral filter
 * should beat the moving average decisively (Fig. 6's point).
 */
double stepEdgeError(const std::vector<float> &filtered, float lo, float hi);

} // namespace incam

#endif // INCAM_BILATERAL_BILATERAL_FILTER_HH
