/**
 * @file
 * The bilateral grid (Chen, Paris & Durand 2007; Barron et al. 2015).
 *
 * A bilateral grid lifts a 2-D image into a 3-D lattice whose axes are
 * (x / s_spatial, y / s_spatial, intensity / s_range). Pixels that are
 * close in space but different in intensity land in distant grid cells,
 * so *local* (cheap, separable) filtering inside the grid equals an
 * *edge-aware* (expensive, global) filter in pixel space — the property
 * Fig. 6 of the paper illustrates and that makes bilateral-space stereo
 * (BSSA) fast: disparity smoothing happens on the coarse lattice instead
 * of per pixel.
 *
 * The grid stores homogeneous (value*weight, weight) pairs; slicing
 * divides the interpolated value by the interpolated weight. Splat and
 * slice use trilinear kernels, blur is the separable [1 2 1]/4 stencil
 * per axis. Every method counts its arithmetic so hardware cost models
 * can price the same computation on CPU / GPU / FPGA.
 */

#ifndef INCAM_BILATERAL_GRID_HH
#define INCAM_BILATERAL_GRID_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "exec/exec_policy.hh"
#include "image/image.hh"

namespace incam {

/** Arithmetic-work counters for the grid kernels. */
struct GridOpCounts
{
    uint64_t splat_ops = 0;
    uint64_t blur_vertex_visits = 0; ///< vertex-stencil applications
    uint64_t slice_ops = 0;

    void
    merge(const GridOpCounts &o)
    {
        splat_ops += o.splat_ops;
        blur_vertex_visits += o.blur_vertex_visits;
        slice_ops += o.slice_ops;
    }
};

/** A 3-D homogeneous bilateral grid over a single-channel image. */
class BilateralGrid
{
  public:
    /**
     * Size the grid for a w x h image: spatial cells of
     * @p cell_spatial pixels and @p range_bins intensity bins over
     * [0, 1].
     */
    BilateralGrid(int image_w, int image_h, double cell_spatial,
                  int range_bins);

    int gx() const { return nx; }
    int gy() const { return ny; }
    int gz() const { return nz; }
    size_t
    vertexCount() const
    {
        return static_cast<size_t>(nx) * ny * nz;
    }

    double cellSpatial() const { return cell; }
    int rangeBins() const { return nz; }

    /** In-memory size: two floats per vertex. */
    DataSize
    byteSize() const
    {
        return DataSize::bytes(
            static_cast<double>(vertexCount() * 2 * sizeof(float)));
    }

    /**
     * Accumulate @p value into the grid guided by @p guide intensities,
     * weighting each pixel by @p confidence (pass nullptr for weight 1).
     * Trilinear splatting: each pixel feeds its 8 surrounding vertices.
     *
     * Parallelized over fixed row bands with per-band grid accumulators
     * merged in band order, so results are bit-identical for every
     * thread count at a given grain.
     */
    void splat(const ImageF &guide, const ImageF &value,
               const ImageF *confidence, GridOpCounts *ops = nullptr,
               const ExecPolicy &pol = ExecPolicy::serial());

    /** One separable [1 2 1]/4 blur pass along all three axes. */
    void blur(GridOpCounts *ops = nullptr,
              const ExecPolicy &pol = ExecPolicy::serial());

    /**
     * Read the grid back at every pixel of @p guide (trilinear), dividing
     * by the interpolated weight. Zero-weight regions produce
     * @p fallback.
     */
    ImageF slice(const ImageF &guide, float fallback = 0.0f,
                 GridOpCounts *ops = nullptr,
                 const ExecPolicy &pol = ExecPolicy::serial()) const;

    /**
     * Blend this grid toward @p data: v = (v + lambda * data_v) /
     * normalized — the Jacobi data-fidelity step of the BSSA solver.
     */
    void blendData(const BilateralGrid &data, double lambda);

    /** Raw vertex accessors (tests & the FPGA datapath validation). */
    float vertexValue(int i, int j, int k) const;
    float vertexWeight(int i, int j, int k) const;
    void setVertex(int i, int j, int k, float value_times_weight,
                   float weight);

  private:
    size_t
    index(int i, int j, int k) const
    {
        return (static_cast<size_t>(k) * ny + j) * nx + i;
    }

    int nx;
    int ny;
    int nz;
    double cell;
    std::vector<float> val; ///< value * weight
    std::vector<float> wgt; ///< weight
};

} // namespace incam

#endif // INCAM_BILATERAL_GRID_HH
