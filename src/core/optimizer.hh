/**
 * @file
 * Exhaustive configuration search over an in-camera pipeline.
 *
 * The design question the paper poses — which blocks belong in the
 * camera, on what hardware, and where should the pipeline be cut for
 * offload? — is a discrete search over (optional-block inclusion) x
 * (implementation per included block) x (cut position). The spaces are
 * small (Fig. 10 enumerates nine points of one such space by hand), so
 * the optimizer enumerates exhaustively and ranks by the chosen
 * objective; its results are cross-checked against the hand-built
 * configurations in the tests.
 */

#ifndef INCAM_CORE_OPTIMIZER_HH
#define INCAM_CORE_OPTIMIZER_HH

#include <vector>

#include "core/pipeline.hh"

namespace incam {

/** Objective for ranking configurations. */
struct OptimizerGoal
{
    enum class Kind
    {
        MinEnergy,     ///< minimize J/frame (FA case study)
        MaxThroughput, ///< maximize total FPS (VR case study)
    };
    Kind kind = Kind::MinEnergy;
    /** Throughput floor a MinEnergy config must still satisfy (0=none). */
    double min_fps = 0.0;
    /** Frame rate used to convert energy to power (reporting only). */
    FrameRate frame_rate = FrameRate::fps(1.0);
};

/** One enumerated configuration with its evaluated costs. */
struct ConfigResult
{
    PipelineConfig config;
    EnergyReport energy;
    ThroughputReport throughput;

    /** Objective value (lower is better for both kinds). */
    double objective = 0.0;
    bool feasible = true;
};

/** Enumerates and ranks pipeline configurations. */
class PipelineOptimizer
{
  public:
    PipelineOptimizer(const Pipeline &pipeline, NetworkLink link);

    /**
     * Enumerate every legal configuration: all optional-block subsets,
     * every implementation assignment for in-camera blocks, every cut.
     * Results are sorted best-first under @p goal; infeasible configs
     * (violating min_fps) sort last.
     */
    std::vector<ConfigResult> enumerate(const OptimizerGoal &goal) const;

    /** The best feasible configuration. Fatal if none is feasible. */
    ConfigResult best(const OptimizerGoal &goal) const;

    /** Number of legal configurations (sanity checks / reporting). */
    size_t configurationCount() const;

  private:
    PipelineEvaluator evaluator;
};

} // namespace incam

#endif // INCAM_CORE_OPTIMIZER_HH
