#include "core/pipeline.hh"

#include <limits>

#include "common/logging.hh"

namespace incam {

Pipeline::Pipeline(std::string name, DataSize source_bytes)
    : label(std::move(name)), src_bytes(source_bytes)
{
    incam_assert(src_bytes.b() > 0.0, "pipeline '", label,
                 "' needs a positive source size");
}

Pipeline &
Pipeline::add(Block block)
{
    chain.push_back(std::move(block));
    return *this;
}

std::string
PipelineConfig::toString(const Pipeline &p) const
{
    std::string out = "S";
    for (int i = 0; i < p.blockCount(); ++i) {
        if (i == cut) {
            out += " || ";
        }
        if (!include[static_cast<size_t>(i)]) {
            continue;
        }
        out += " + " + p.block(i).name();
        if (i < cut) {
            out += std::string("(") +
                   implName(impl[static_cast<size_t>(i)]) + ")";
        }
    }
    if (cut == p.blockCount()) {
        out += " ||";
    }
    return out;
}

PipelineConfig
PipelineConfig::full(const Pipeline &p, Impl impl, int cut)
{
    PipelineConfig cfg;
    cfg.include.assign(static_cast<size_t>(p.blockCount()), true);
    cfg.impl.assign(static_cast<size_t>(p.blockCount()), impl);
    cfg.cut = cut < 0 ? p.blockCount() : cut;
    return cfg;
}

PipelineEvaluator::PipelineEvaluator(const Pipeline &pipeline,
                                     NetworkLink link)
    : pipe(pipeline), net(std::move(link))
{
}

void
PipelineEvaluator::check(const PipelineConfig &cfg) const
{
    const size_t n = static_cast<size_t>(pipe.blockCount());
    incam_assert(cfg.include.size() == n && cfg.impl.size() == n,
                 "config vectors must match the block count");
    incam_assert(cfg.cut >= 0 && cfg.cut <= pipe.blockCount(),
                 "cut ", cfg.cut, " out of range");
    for (size_t i = 0; i < n; ++i) {
        const Block &b = pipe.block(static_cast<int>(i));
        incam_assert(cfg.include[i] || b.optional(), "core block '",
                     b.name(), "' cannot be excluded");
        if (cfg.include[i] && static_cast<int>(i) < cfg.cut) {
            incam_assert(b.hasImpl(cfg.impl[i]), "block '", b.name(),
                         "' lacks a ", implName(cfg.impl[i]),
                         " implementation");
        }
    }
}

DataSize
PipelineEvaluator::cutBytes(const PipelineConfig &cfg) const
{
    // The data crossing the cut is the output of the last *included*
    // block before the cut, or the raw source if none is included.
    DataSize bytes = pipe.sourceBytes();
    for (int i = 0; i < cfg.cut; ++i) {
        if (cfg.include[static_cast<size_t>(i)]) {
            bytes = pipe.block(i).outputBytes();
        }
    }
    return bytes;
}

EnergyReport
PipelineEvaluator::evaluateEnergy(const PipelineConfig &cfg) const
{
    check(cfg);
    EnergyReport rep;
    rep.per_block.assign(static_cast<size_t>(pipe.blockCount()), Energy{});

    // Duty: fraction of frames reaching each successive block; upstream
    // filters (pass fraction < 1) gate everything downstream.
    double duty = 1.0;
    for (int i = 0; i < cfg.cut; ++i) {
        if (!cfg.include[static_cast<size_t>(i)]) {
            continue;
        }
        const Block &b = pipe.block(i);
        const ImplCost &c = b.cost(cfg.impl[static_cast<size_t>(i)]);
        const Energy e = c.energy * duty;
        rep.per_block[static_cast<size_t>(i)] = e;
        rep.compute += e;
        duty *= b.passFraction();
    }

    rep.cut_duty = duty;
    rep.cut_bytes = cutBytes(cfg);
    if (cfg.cut < pipe.blockCount()) {
        // Something is offloaded: pay radio energy for frames that
        // survive the in-camera filters.
        rep.communication = net.transferEnergy(rep.cut_bytes) * duty;
    } else {
        // Fully in-camera: only the final verdict leaves the node; the
        // paper treats that cost as negligible, and so do we.
        rep.communication = Energy{};
    }
    return rep;
}

ThroughputReport
PipelineEvaluator::evaluateThroughput(const PipelineConfig &cfg) const
{
    check(cfg);
    ThroughputReport rep;
    rep.compute_fps = std::numeric_limits<double>::infinity();
    for (int i = 0; i < cfg.cut; ++i) {
        if (!cfg.include[static_cast<size_t>(i)]) {
            continue;
        }
        const Block &b = pipe.block(i);
        const ImplCost &c = b.cost(cfg.impl[static_cast<size_t>(i)]);
        if (c.time.sec() > 0.0) {
            rep.compute_fps =
                std::min(rep.compute_fps, 1.0 / c.time.sec());
        }
    }
    // Even a fully in-camera pipeline ships its product (the stereo
    // video stream), so the link cost applies at every cut position.
    // Zero bytes at the cut (a fully-gating filter) means the link is
    // never the bottleneck: framesPerSecond reports infinity there.
    rep.comm_fps = net.framesPerSecond(cutBytes(cfg));
    rep.total_fps = std::min(rep.compute_fps, rep.comm_fps);
    return rep;
}

} // namespace incam
