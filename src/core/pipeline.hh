/**
 * @file
 * In-camera processing pipelines and their cost semantics.
 *
 * This is the paper's analytical contribution made executable. A
 * Pipeline is a source (the sensor) followed by blocks; a
 * PipelineConfig decides, per block, whether it is included (core
 * blocks always are), which implementation runs it, and where the
 * offload *cut* falls — blocks at or after the cut execute in the
 * cloud, whose computation is free, but the data crossing the cut pays
 * the link's communication cost.
 *
 * Two cost semantics, one per case study:
 *
 *  - *Energy* (face authentication): total J/frame = sum of in-camera
 *    block energies, each scaled by the fraction of frames that
 *    actually reach it (upstream filters gate downstream work), plus
 *    radio J/bit for the bytes crossing the cut (also duty-scaled).
 *    Average power follows at a given frame rate.
 *
 *  - *Throughput* (VR video): the pipeline is pipelined across frames,
 *    so total FPS = min(per-block compute FPS, link FPS at the cut) —
 *    "the slowest step dominates overall throughput" (Section IV).
 */

#ifndef INCAM_CORE_PIPELINE_HH
#define INCAM_CORE_PIPELINE_HH

#include <vector>

#include "core/block.hh"
#include "core/network.hh"

namespace incam {

/** A sensor source plus an ordered chain of candidate blocks. */
class Pipeline
{
  public:
    Pipeline(std::string name, DataSize source_bytes);

    const std::string &name() const { return label; }
    DataSize sourceBytes() const { return src_bytes; }

    Pipeline &add(Block block);

    int blockCount() const { return static_cast<int>(chain.size()); }
    const Block &block(int i) const { return chain.at(i); }
    const std::vector<Block> &blocks() const { return chain; }

  private:
    std::string label;
    DataSize src_bytes;
    std::vector<Block> chain;
};

/** One point in the configuration space of a pipeline. */
struct PipelineConfig
{
    /** Include flag per block (core blocks must be true). */
    std::vector<bool> include;
    /** Implementation per block (ignored for excluded/cloud blocks). */
    std::vector<Impl> impl;
    /**
     * Offload cut: blocks with index < cut run in camera, the rest in
     * the cloud. cut == 0 streams raw sensor data; cut == blockCount()
     * runs everything in camera and uploads the final product.
     */
    int cut = 0;

    /** Compact display string, e.g. "S|B1(ASIC)+B3(ASIC)||B4". */
    std::string toString(const Pipeline &p) const;

    /**
     * The everything-included configuration: all blocks on @p impl,
     * cut at @p cut (default: fully in camera). Every block must
     * provide @p impl.
     */
    static PipelineConfig full(const Pipeline &p, Impl impl = Impl::Asic,
                               int cut = -1);
};

/** Energy-semantics evaluation result. */
struct EnergyReport
{
    Energy compute;          ///< in-camera compute, duty-scaled
    Energy communication;    ///< radio cost at the cut, duty-scaled
    std::vector<Energy> per_block; ///< in-camera blocks (0 elsewhere)
    double cut_duty = 1.0;   ///< fraction of frames crossing the cut
    DataSize cut_bytes;      ///< bytes per crossing frame

    Energy
    total() const
    {
        return compute + communication;
    }

    /** Average power at a steady frame rate. */
    Power
    averagePower(FrameRate rate) const
    {
        return Power::watts(total().j() * rate.perSecond());
    }
};

/** Throughput-semantics evaluation result. */
struct ThroughputReport
{
    double compute_fps = 0.0; ///< min over in-camera blocks
    double comm_fps = 0.0;    ///< link FPS at the cut
    double total_fps = 0.0;   ///< min of the two

    bool
    meets(double target) const
    {
        return total_fps >= target;
    }
};

/** Evaluates configurations of a pipeline against a link. */
class PipelineEvaluator
{
  public:
    PipelineEvaluator(const Pipeline &pipeline, NetworkLink link);

    const Pipeline &pipeline() const { return pipe; }
    const NetworkLink &link() const { return net; }

    /** Validate structural rules; fatal on broken configs. */
    void check(const PipelineConfig &cfg) const;

    /** Energy semantics (the FA case study). */
    EnergyReport evaluateEnergy(const PipelineConfig &cfg) const;

    /** Throughput semantics (the VR case study). */
    ThroughputReport evaluateThroughput(const PipelineConfig &cfg) const;

    /** Bytes crossing the cut for a configuration. */
    DataSize cutBytes(const PipelineConfig &cfg) const;

  private:
    const Pipeline &pipe;
    NetworkLink net;
};

} // namespace incam

#endif // INCAM_CORE_PIPELINE_HH
