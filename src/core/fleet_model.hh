/**
 * @file
 * Analytical fleet-level cost model: N cameras, one shared uplink.
 *
 * The paper prices one camera against one link, but its deployment
 * stories — WISPCam swarms, multi-camera VR rigs — put many cameras
 * behind a single shared medium. This module extends the per-pipeline
 * evaluator with contention: each camera offers traffic at the rate
 * its in-camera compute sustains, the link's goodput is divided among
 * the offered loads under a share policy, and each camera's predicted
 * throughput is the min of its compute rate and its allocated link
 * rate.
 *
 * The allocation is *weighted max-min fair* (progressive water
 * filling): cameras demanding less than their weighted share keep
 * their demand, and the residual capacity is re-divided among the
 * still-backlogged cameras by weight — the steady state a
 * work-conserving weighted arbiter (fleet/SharedLink) converges to.
 * StrictPriority instead allocates in priority order, each tier
 * taking what it demands before the next tier sees any capacity.
 *
 * fleetReport() prices a fixed fleet; FleetOptimizer searches
 * per-camera configurations (reusing PipelineOptimizer's enumeration)
 * for the assignment that maximizes aggregate feasible FPS or
 * minimizes total energy under the shared budget.
 */

#ifndef INCAM_CORE_FLEET_MODEL_HH
#define INCAM_CORE_FLEET_MODEL_HH

#include <string>
#include <vector>

#include "core/optimizer.hh"
#include "core/pipeline.hh"

namespace incam {

/** How a shared link's goodput is divided among competing cameras. */
enum class SharePolicy
{
    /** Equal weights: plain max-min fair sharing. */
    Fair,
    /** Weighted max-min: shares proportional to camera weights. */
    Weighted,
    /** Higher weight = higher priority; strict precedence, ties share
     *  fairly within the tier. Lower tiers can starve. */
    StrictPriority,
};

const char *sharePolicyName(SharePolicy policy);

/** One camera of an analytical fleet. */
struct FleetCameraModel
{
    std::string name;
    /** Non-owning: must outlive every model call that uses it. */
    const Pipeline *pipeline = nullptr;
    PipelineConfig config;
    /** Fair: ignored. Weighted: share weight. StrictPriority: rank. */
    double weight = 1.0;
    /** Source emission cap in FPS; 0 means saturated (compute-bound). */
    double source_fps = 0.0;
};

/** Predicted steady-state behaviour of one camera under contention. */
struct FleetShare
{
    std::string name;
    /** Rate the camera can offer: min(compute FPS, source FPS). */
    double offered_fps = 0.0;
    /** Bytes per frame crossing this camera's cut. */
    DataSize cut_bytes;
    /** Load the camera would put on the link, bytes/s (offered x cut). */
    double demand_bps = 0.0;
    /** Link bytes/s the policy allocates to this camera. */
    double allocated_bps = 0.0;
    /** FPS the allocation sustains (infinite for a zero-byte cut). */
    double link_fps = 0.0;
    /** Predicted delivered FPS: min(offered, link share). */
    double fps = 0.0;
    /** Predicted J per source frame (duty-scaled EnergyReport total). */
    Energy jpf;
    /** True when the link share, not compute, limits this camera. */
    bool link_bound = false;
};

/** The fleet-level analogue of Throughput/EnergyReport. */
struct FleetModelReport
{
    std::vector<FleetShare> cameras;
    /** Sum of predicted per-camera FPS. */
    double aggregate_fps = 0.0;
    /** Sum of predicted per-camera J per source frame. */
    Energy total_jpf;
    /** Total offered load vs link goodput, bytes/s. */
    double offered_bps = 0.0;
    double capacity_bps = 0.0;
    /** Allocated / capacity (1.0 when the link saturates). */
    double utilization = 0.0;
};

/**
 * Predict per-camera goodput shares, FPS and J/frame for @p cameras
 * contending for @p link under @p policy.
 *
 * Throughput follows streaming semantics (every frame crosses the
 * cut, as in ThroughputReport); energy follows duty semantics
 * (upstream filters gate downstream frames, as in EnergyReport) —
 * matching the two measurement modes of the fleet runtime.
 */
FleetModelReport fleetReport(const std::vector<FleetCameraModel> &cameras,
                             const NetworkLink &link, SharePolicy policy);

/** Objective for the fleet-level configuration search. */
struct FleetOptimizerGoal
{
    enum class Kind
    {
        MaxAggregateFps, ///< maximize sum of delivered FPS
        MinTotalEnergy,  ///< minimize sum of J/frame
    };
    Kind kind = Kind::MaxAggregateFps;
    /** FPS floor every camera must satisfy (0 = none). */
    double per_camera_min_fps = 0.0;
};

/** One fleet configuration assignment with its evaluated model. */
struct FleetChoice
{
    /** Chosen configuration per camera, fleet order. */
    std::vector<PipelineConfig> configs;
    FleetModelReport report;
    double objective = 0.0;
    bool feasible = true;
};

/**
 * Searches per-camera configurations under a shared link budget.
 *
 * Each camera's candidate set is PipelineOptimizer::enumerate over its
 * own pipeline (the single-camera spaces are tiny); the cross-camera
 * assignment is then refined by deterministic coordinate descent:
 * sweep the cameras in order, re-picking each camera's configuration
 * to best the fleet objective with the others held fixed, until a
 * full sweep changes nothing. Greedy in the product space, exact in
 * each coordinate — and every tie falls back to the per-camera
 * optimizer's total order, so results are platform-stable.
 */
class FleetOptimizer
{
  public:
    FleetOptimizer(std::vector<FleetCameraModel> cameras,
                   NetworkLink link, SharePolicy policy);

    /** The best assignment found; check FleetChoice::feasible when
     *  the goal demands a per-camera throughput floor. */
    FleetChoice best(const FleetOptimizerGoal &goal) const;

  private:
    std::vector<FleetCameraModel> cams;
    NetworkLink net;
    SharePolicy policy;
};

} // namespace incam

#endif // INCAM_CORE_FLEET_MODEL_HH
