#include "core/network.hh"

namespace incam {

NetworkLink
twentyFiveGbE()
{
    NetworkLink l;
    l.name = "25 GbE";
    l.bandwidth = Bandwidth::gigabitsPerSec(25.0);
    // Wired, externally powered PHY: camera-side per-bit energy is
    // negligible next to the compute blocks; keep a small realistic
    // MAC/serdes figure.
    l.energy_per_bit = Energy::picojoules(40.0);
    return l;
}

NetworkLink
fourHundredGbE()
{
    NetworkLink l;
    l.name = "400 GbE";
    l.bandwidth = Bandwidth::gigabitsPerSec(400.0);
    l.energy_per_bit = Energy::picojoules(25.0);
    return l;
}

NetworkLink
backscatterUplink()
{
    NetworkLink l;
    l.name = "RF backscatter";
    l.bandwidth = Bandwidth::megabitsPerSec(0.25);
    // Modulating the reflection is nearly free; the effective figure is
    // dominated by clocking frame memory and reader handshakes.
    l.energy_per_bit = Energy::nanojoules(0.40);
    return l;
}

NetworkLink
wifiUplink()
{
    NetworkLink l;
    l.name = "Wi-Fi (802.11n)";
    l.bandwidth = Bandwidth::megabitsPerSec(72.0);
    l.protocol_efficiency = 0.6;
    l.energy_per_bit = Energy::nanojoules(5.0);
    return l;
}

} // namespace incam
