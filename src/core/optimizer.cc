#include "core/optimizer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace incam {

PipelineOptimizer::PipelineOptimizer(const Pipeline &pipeline,
                                     NetworkLink link)
    : evaluator(pipeline, std::move(link))
{
}

namespace {

/**
 * Recursively assign implementations to in-camera included blocks,
 * invoking @p emit for every complete assignment.
 */
template <typename EmitFn>
void
assignImpls(const Pipeline &pipe, PipelineConfig &cfg, int index,
            const EmitFn &emit)
{
    if (index >= cfg.cut) {
        emit(cfg);
        return;
    }
    const size_t i = static_cast<size_t>(index);
    if (!cfg.include[i]) {
        assignImpls(pipe, cfg, index + 1, emit);
        return;
    }
    for (const auto &[impl, cost] : pipe.block(index).implementations()) {
        (void)cost;
        cfg.impl[i] = impl;
        assignImpls(pipe, cfg, index + 1, emit);
    }
}

} // namespace

std::vector<ConfigResult>
PipelineOptimizer::enumerate(const OptimizerGoal &goal) const
{
    const Pipeline &pipe = evaluator.pipeline();
    const int n = pipe.blockCount();

    // Optional-block subset masks.
    std::vector<int> optional_indices;
    for (int i = 0; i < n; ++i) {
        if (pipe.block(i).optional()) {
            optional_indices.push_back(i);
        }
    }

    std::vector<ConfigResult> results;
    const size_t subsets = size_t{1} << optional_indices.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
        PipelineConfig cfg;
        cfg.include.assign(static_cast<size_t>(n), true);
        cfg.impl.assign(static_cast<size_t>(n), Impl::Cpu);
        for (size_t b = 0; b < optional_indices.size(); ++b) {
            cfg.include[static_cast<size_t>(optional_indices[b])] =
                (mask >> b) & 1;
        }
        for (int cut = 0; cut <= n; ++cut) {
            cfg.cut = cut;
            assignImpls(pipe, cfg, 0, [&](const PipelineConfig &done) {
                ConfigResult r;
                r.config = done;
                r.energy = evaluator.evaluateEnergy(done);
                r.throughput = evaluator.evaluateThroughput(done);
                r.feasible = goal.min_fps <= 0.0 ||
                             r.throughput.total_fps >= goal.min_fps;
                r.objective = goal.kind == OptimizerGoal::Kind::MinEnergy
                                  ? r.energy.total().j()
                                  : -r.throughput.total_fps;
                results.push_back(std::move(r));
            });
        }
    }

    // Rank by feasibility then objective, with a *total* tie-break
    // (cut position, then the config display string) so equal-objective
    // configurations order identically on every platform and standard
    // library — best() must be stable across ctest runs and compilers.
    std::sort(results.begin(), results.end(),
              [&pipe](const ConfigResult &a, const ConfigResult &b) {
                  if (a.feasible != b.feasible) {
                      return a.feasible;
                  }
                  if (a.objective != b.objective) {
                      return a.objective < b.objective;
                  }
                  if (a.config.cut != b.config.cut) {
                      return a.config.cut < b.config.cut;
                  }
                  return a.config.toString(pipe) <
                         b.config.toString(pipe);
              });
    return results;
}

ConfigResult
PipelineOptimizer::best(const OptimizerGoal &goal) const
{
    const auto all = enumerate(goal);
    incam_assert(!all.empty(), "pipeline has no configurations");
    if (!all.front().feasible) {
        incam_fatal("no configuration of '",
                    evaluator.pipeline().name(),
                    "' satisfies the throughput floor");
    }
    return all.front();
}

size_t
PipelineOptimizer::configurationCount() const
{
    OptimizerGoal goal;
    return enumerate(goal).size();
}

} // namespace incam
