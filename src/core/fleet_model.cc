#include "core/fleet_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace incam {

const char *
sharePolicyName(SharePolicy policy)
{
    switch (policy) {
      case SharePolicy::Fair:
        return "fair";
      case SharePolicy::Weighted:
        return "weighted";
      case SharePolicy::StrictPriority:
        return "strict-priority";
    }
    return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Weighted max-min fair allocation (progressive water filling) of
 * @p capacity bytes/s among demands. Demands below their weighted
 * share keep their demand; the residual is re-divided by weight among
 * the still-backlogged flows. Zero demands get zero.
 */
std::vector<double>
waterfillFair(const std::vector<double> &demands,
              const std::vector<double> &weights, double capacity)
{
    const size_t n = demands.size();
    std::vector<double> alloc(n, 0.0);
    std::vector<bool> active(n);
    for (size_t i = 0; i < n; ++i) {
        active[i] = demands[i] > 0.0;
    }
    double cap = capacity;
    for (;;) {
        double sum_w = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (active[i]) {
                sum_w += weights[i];
            }
        }
        if (sum_w <= 0.0 || cap <= 0.0) {
            break;
        }
        // Settle every flow whose demand fits inside its weighted
        // share of the remaining capacity; if none does, the rest are
        // all backlogged and split the remainder by weight.
        bool settled_any = false;
        for (size_t i = 0; i < n; ++i) {
            if (!active[i]) {
                continue;
            }
            const double share = cap * weights[i] / sum_w;
            if (demands[i] <= share * (1.0 + 1e-12)) {
                alloc[i] = demands[i];
                active[i] = false;
                settled_any = true;
            }
        }
        if (settled_any) {
            // Recompute remaining capacity from scratch to avoid
            // accumulating subtraction error across rounds.
            cap = capacity;
            for (size_t i = 0; i < n; ++i) {
                if (!active[i]) {
                    cap -= alloc[i];
                }
            }
            cap = std::max(0.0, cap);
            continue;
        }
        for (size_t i = 0; i < n; ++i) {
            if (active[i]) {
                alloc[i] = cap * weights[i] / sum_w;
            }
        }
        break;
    }
    return alloc;
}

/** Allocate under a policy; weight means share (fair/weighted) or
 *  priority rank (strict). */
std::vector<double>
allocate(SharePolicy policy, const std::vector<double> &demands,
         const std::vector<double> &weights, double capacity)
{
    const size_t n = demands.size();
    switch (policy) {
      case SharePolicy::Fair: {
        const std::vector<double> ones(n, 1.0);
        return waterfillFair(demands, ones, capacity);
      }
      case SharePolicy::Weighted:
        return waterfillFair(demands, weights, capacity);
      case SharePolicy::StrictPriority: {
        // Tiers in descending priority; each tier water-fills (equal
        // weights) whatever the tiers above left over.
        std::vector<double> tiers(weights);
        std::sort(tiers.begin(), tiers.end(), std::greater<double>());
        tiers.erase(std::unique(tiers.begin(), tiers.end()),
                    tiers.end());
        std::vector<double> alloc(n, 0.0);
        double cap = capacity;
        for (double tier : tiers) {
            std::vector<size_t> members;
            std::vector<double> d, w;
            for (size_t i = 0; i < n; ++i) {
                if (weights[i] == tier) {
                    members.push_back(i);
                    d.push_back(demands[i]);
                    w.push_back(1.0);
                }
            }
            const std::vector<double> tier_alloc =
                waterfillFair(d, w, cap);
            for (size_t k = 0; k < members.size(); ++k) {
                alloc[members[k]] = tier_alloc[k];
                cap -= tier_alloc[k];
            }
            cap = std::max(0.0, cap);
        }
        return alloc;
      }
    }
    incam_panic("unknown SharePolicy");
}

/** Per-candidate numbers the optimizer re-allocates over and over. */
struct CandidateCost
{
    double offered_fps = 0.0;
    double bytes = 0.0;
    double demand_bps = 0.0;
    double jpf = 0.0;
};

CandidateCost
candidateCost(const PipelineEvaluator &eval, const PipelineConfig &cfg,
              double source_fps)
{
    CandidateCost c;
    c.offered_fps = eval.evaluateThroughput(cfg).compute_fps;
    if (source_fps > 0.0) {
        c.offered_fps = std::min(c.offered_fps, source_fps);
    }
    c.bytes = eval.cutBytes(cfg).b();
    c.demand_bps = c.bytes > 0.0 ? c.offered_fps * c.bytes : 0.0;
    c.jpf = eval.evaluateEnergy(cfg).total().j();
    return c;
}

/** Delivered FPS of one camera given its link allocation. */
double
deliveredFps(const CandidateCost &c, double alloc_bps)
{
    if (c.bytes <= 0.0) {
        return c.offered_fps; // the link is never the bottleneck
    }
    return std::min(c.offered_fps, alloc_bps / c.bytes);
}

} // namespace

FleetModelReport
fleetReport(const std::vector<FleetCameraModel> &cameras,
            const NetworkLink &link, SharePolicy policy)
{
    incam_assert(!cameras.empty(), "a fleet needs at least one camera");
    const size_t n = cameras.size();
    FleetModelReport rep;
    rep.capacity_bps = link.goodput().bytesPerSecond();

    std::vector<CandidateCost> costs(n);
    std::vector<double> demands(n), weights(n);
    for (size_t i = 0; i < n; ++i) {
        const FleetCameraModel &cam = cameras[i];
        incam_assert(cam.pipeline != nullptr, "camera '", cam.name,
                     "' has no pipeline");
        incam_assert(cam.weight > 0.0, "camera '", cam.name,
                     "' needs a positive weight");
        const PipelineEvaluator eval(*cam.pipeline, link);
        costs[i] = candidateCost(eval, cam.config, cam.source_fps);
        demands[i] = costs[i].demand_bps;
        weights[i] = cam.weight;
    }

    const std::vector<double> alloc =
        allocate(policy, demands, weights, rep.capacity_bps);

    double allocated = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const CandidateCost &c = costs[i];
        FleetShare share;
        share.name = cameras[i].name;
        share.offered_fps = c.offered_fps;
        share.cut_bytes = DataSize::bytes(c.bytes);
        share.demand_bps = c.demand_bps;
        share.allocated_bps = alloc[i];
        share.link_fps = c.bytes > 0.0 ? alloc[i] / c.bytes : kInf;
        share.fps = deliveredFps(c, alloc[i]);
        share.jpf = Energy::joules(c.jpf);
        share.link_bound = c.bytes > 0.0 && share.link_fps < c.offered_fps;
        rep.aggregate_fps += share.fps;
        rep.total_jpf += share.jpf;
        rep.offered_bps += std::isfinite(c.demand_bps) ? c.demand_bps
                                                       : rep.capacity_bps;
        allocated += share.fps * c.bytes;
        rep.cameras.push_back(std::move(share));
    }
    rep.utilization =
        rep.capacity_bps > 0.0 ? allocated / rep.capacity_bps : 0.0;
    return rep;
}

FleetOptimizer::FleetOptimizer(std::vector<FleetCameraModel> cameras,
                               NetworkLink link, SharePolicy share_policy)
    : cams(std::move(cameras)), net(std::move(link)),
      policy(share_policy)
{
    incam_assert(!cams.empty(), "a fleet needs at least one camera");
}

FleetChoice
FleetOptimizer::best(const FleetOptimizerGoal &goal) const
{
    const size_t n = cams.size();

    // Per-camera candidate configurations, best-first under the
    // matching single-camera goal (total ordering: ties broken by cut
    // and config string, so the whole search is platform-stable).
    OptimizerGoal per_goal;
    per_goal.kind = goal.kind == FleetOptimizerGoal::Kind::MinTotalEnergy
                        ? OptimizerGoal::Kind::MinEnergy
                        : OptimizerGoal::Kind::MaxThroughput;
    per_goal.min_fps = goal.per_camera_min_fps;

    std::vector<std::vector<ConfigResult>> candidates(n);
    std::vector<std::vector<CandidateCost>> costs(n);
    std::vector<double> weights(n);
    for (size_t i = 0; i < n; ++i) {
        incam_assert(cams[i].pipeline != nullptr, "camera '",
                     cams[i].name, "' has no pipeline");
        const PipelineOptimizer opt(*cams[i].pipeline, net);
        candidates[i] = opt.enumerate(per_goal);
        const PipelineEvaluator eval(*cams[i].pipeline, net);
        for (const ConfigResult &r : candidates[i]) {
            costs[i].push_back(
                candidateCost(eval, r.config, cams[i].source_fps));
        }
        weights[i] = cams[i].weight;
    }

    // Objective of one assignment, on the cached candidate costs.
    auto evaluate = [&](const std::vector<size_t> &idx) {
        std::vector<double> demands(n);
        for (size_t i = 0; i < n; ++i) {
            demands[i] = costs[i][idx[i]].demand_bps;
        }
        const std::vector<double> alloc =
            allocate(policy, demands, weights,
                     net.goodput().bytesPerSecond());
        double aggregate = 0.0, total_jpf = 0.0;
        bool feasible = true;
        for (size_t i = 0; i < n; ++i) {
            const double fps = deliveredFps(costs[i][idx[i]], alloc[i]);
            aggregate += fps;
            total_jpf += costs[i][idx[i]].jpf;
            if (goal.per_camera_min_fps > 0.0 &&
                fps < goal.per_camera_min_fps) {
                feasible = false;
            }
        }
        const double objective =
            goal.kind == FleetOptimizerGoal::Kind::MinTotalEnergy
                ? total_jpf
                : -aggregate;
        return std::make_pair(feasible, objective);
    };

    // Start every camera at its standalone best, then coordinate
    // descent: re-pick each camera against the fleet objective with
    // the others fixed until a sweep changes nothing. Strict
    // improvement is required to move, so equal-objective candidates
    // keep the earliest (best standalone) index — deterministic.
    std::vector<size_t> idx(n, 0);
    auto [cur_feasible, cur_objective] = evaluate(idx);
    const int kMaxSweeps = 8;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            size_t best_j = idx[i];
            bool best_feasible = cur_feasible;
            double best_objective = cur_objective;
            for (size_t j = 0; j < candidates[i].size(); ++j) {
                if (j == idx[i]) {
                    continue;
                }
                idx[i] = j;
                const auto [f, o] = evaluate(idx);
                const bool better =
                    (f && !best_feasible) ||
                    (f == best_feasible && o < best_objective - 1e-12);
                if (better) {
                    best_j = j;
                    best_feasible = f;
                    best_objective = o;
                }
            }
            idx[i] = best_j;
            if (best_objective != cur_objective ||
                best_feasible != cur_feasible) {
                changed = true;
            }
            cur_feasible = best_feasible;
            cur_objective = best_objective;
        }
        if (!changed) {
            break;
        }
    }

    FleetChoice choice;
    std::vector<FleetCameraModel> final_cams(cams);
    for (size_t i = 0; i < n; ++i) {
        choice.configs.push_back(candidates[i][idx[i]].config);
        final_cams[i].config = candidates[i][idx[i]].config;
    }
    choice.report = fleetReport(final_cams, net, policy);
    choice.feasible = cur_feasible;
    choice.objective = cur_objective;
    return choice;
}

} // namespace incam
