/**
 * @file
 * Pipeline blocks — the unit of the paper's cost framework (Fig. 1).
 *
 * A camera application decomposes into a chain of functional blocks
 * (B1..Bn). Each block can be implemented on one or more platform
 * classes (ASIC, FPGA, GPU, CPU, MCU), each with its own per-frame time
 * and energy; *core* blocks are essential to the application while
 * *optional* blocks (motion detection, face detection, compression)
 * only filter or transform data to make the rest of the pipeline
 * cheaper. A block also declares its output size — the quantity that
 * becomes the communication cost if the pipeline is cut there — and a
 * pass fraction, the share of frames it lets through to downstream
 * blocks (the progressive-filtering mechanism of the FA case study).
 */

#ifndef INCAM_CORE_BLOCK_HH
#define INCAM_CORE_BLOCK_HH

#include <map>
#include <optional>
#include <string>

#include "common/units.hh"

namespace incam {

/** Implementation platform classes considered by the paper. */
enum class Impl
{
    Asic,
    Fpga,
    Gpu,
    Cpu,
    Mcu,
};

/** Short display name for an implementation class. */
const char *implName(Impl impl);

/** Per-frame cost of running a block on one implementation. */
struct ImplCost
{
    Time time;     ///< occupancy per frame (sets throughput)
    Energy energy; ///< energy per frame (sets power)
};

/** One functional block of an in-camera pipeline. */
class Block
{
  public:
    Block(std::string name, bool optional, DataSize output_bytes);

    const std::string &name() const { return label; }
    bool optional() const { return is_optional; }
    DataSize outputBytes() const { return out_bytes; }

    /**
     * Fraction of frames this block forwards downstream (1.0 for pure
     * transforms; < 1 for filters like motion detection).
     */
    double passFraction() const { return pass_fraction; }
    Block &setPassFraction(double f);

    /** Register an implementation option. Returns *this for chaining. */
    Block &addImpl(Impl impl, ImplCost cost);

    bool hasImpl(Impl impl) const { return impls.count(impl) > 0; }
    const ImplCost &cost(Impl impl) const;

    /** All registered implementations. */
    const std::map<Impl, ImplCost> &implementations() const
    {
        return impls;
    }

  private:
    std::string label;
    bool is_optional;
    DataSize out_bytes;
    double pass_fraction = 1.0;
    std::map<Impl, ImplCost> impls;
};

} // namespace incam

#endif // INCAM_CORE_BLOCK_HH
