#include "core/block.hh"

#include "common/logging.hh"

namespace incam {

const char *
implName(Impl impl)
{
    switch (impl) {
      case Impl::Asic:
        return "ASIC";
      case Impl::Fpga:
        return "FPGA";
      case Impl::Gpu:
        return "GPU";
      case Impl::Cpu:
        return "CPU";
      case Impl::Mcu:
        return "MCU";
    }
    return "?";
}

Block::Block(std::string name, bool optional, DataSize output_bytes)
    : label(std::move(name)), is_optional(optional), out_bytes(output_bytes)
{
    incam_assert(!label.empty(), "a block needs a name");
}

Block &
Block::setPassFraction(double f)
{
    incam_assert(f >= 0.0 && f <= 1.0, "pass fraction must be in [0, 1]");
    pass_fraction = f;
    return *this;
}

Block &
Block::addImpl(Impl impl, ImplCost cost)
{
    incam_assert(cost.time.sec() >= 0.0 && cost.energy.j() >= 0.0,
                 "negative cost for block '", label, "'");
    impls[impl] = cost;
    return *this;
}

const ImplCost &
Block::cost(Impl impl) const
{
    const auto it = impls.find(impl);
    incam_assert(it != impls.end(), "block '", label, "' has no ",
                 implName(impl), " implementation");
    return it->second;
}

} // namespace incam
