/**
 * @file
 * Uplink models for the offload side of the cost framework.
 *
 * The paper treats cloud computation as free but the *transport* as
 * costly: the camera pays time (bandwidth) and energy (radio joules per
 * bit) to move whatever data crosses the offload cut. The two case
 * studies sit at opposite ends: a WISPCam backscatter uplink measured
 * in kb/s and nJ/bit, and a wired 25 GbE link where only throughput
 * matters. Section IV-C's sensitivity analysis sweeps this link.
 */

#ifndef INCAM_CORE_NETWORK_HH
#define INCAM_CORE_NETWORK_HH

#include <limits>
#include <string>

#include "common/units.hh"

namespace incam {

/** A camera-to-cloud link. */
struct NetworkLink
{
    std::string name;
    Bandwidth bandwidth;
    Energy energy_per_bit;            ///< camera-side cost to transmit
    double protocol_efficiency = 1.0; ///< goodput / line rate

    /** Effective goodput. */
    Bandwidth
    goodput() const
    {
        return bandwidth * protocol_efficiency;
    }

    /**
     * Time to move @p s across the link. A zero-byte transfer (a
     * fully-gating filter before the cut) costs no time: the link is
     * never the bottleneck.
     */
    Time
    transferTime(DataSize s) const
    {
        if (s.b() <= 0.0) {
            return Time{};
        }
        return goodput().transferTime(s);
    }

    /**
     * Frames per second the link sustains at @p s bytes per frame.
     * Zero bytes per frame means the link never limits the rate:
     * infinite FPS, not a divide-by-zero.
     */
    double
    framesPerSecond(DataSize s) const
    {
        if (s.b() <= 0.0) {
            return std::numeric_limits<double>::infinity();
        }
        return goodput().bytesPerSecond() / s.b();
    }

    /** Camera-side energy to transmit @p s (zero for zero bytes). */
    Energy
    transferEnergy(DataSize s) const
    {
        return energy_per_bit * s.totalBits();
    }
};

/** 25 Gigabit Ethernet — the VR rig's uplink. */
NetworkLink twentyFiveGbE();

/** Hypothetical 400 Gb Ethernet (the Section IV-C projection). */
NetworkLink fourHundredGbE();

/** WISPCam-class RF backscatter uplink. */
NetworkLink backscatterUplink();

/** 802.11n-class Wi-Fi, a mid-range reference point. */
NetworkLink wifiUplink();

} // namespace incam

#endif // INCAM_CORE_NETWORK_HH
