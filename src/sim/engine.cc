#include "sim/engine.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace incam {
namespace sim {

SimEngine::SimEngine(NetworkLink link, Options options)
    : opts(options),
      link(std::move(link),
           SimLink::Options{options.policy, options.trace})
{
}

int
SimEngine::addCamera(StreamingPipeline *pipeline, std::string name,
                     double weight)
{
    incam_assert(!ran, "a SimEngine instance is single-use");
    incam_assert(pipeline != nullptr, "null pipeline");
    const int endpoint = link.addEndpoint(std::move(name), weight);
    Cam cam;
    cam.sp = pipeline;
    cam.index = endpoint;
    cams.push_back(std::move(cam));
    return endpoint;
}

VirtualClock *
SimEngine::cameraClock(int camera)
{
    incam_assert(camera >= 0 &&
                     static_cast<size_t>(camera) < cams.size(),
                 "unknown camera ", camera);
    return &cams[static_cast<size_t>(camera)].clock;
}

void
SimEngine::run()
{
    incam_assert(!ran, "a SimEngine instance is single-use");
    ran = true;
    incam_assert(!cams.empty(), "an engine needs at least one camera");

    for (Cam &cam : cams) {
        try {
            cam.sp->beginEventRun();
            scheduleSource(cam);
        } catch (...) {
            failCamera(cam, std::current_exception());
        }
    }

    while (!sched.empty()) {
        const Event ev = sched.pop();
        ++n_events;
        model_end = std::max(model_end, ev.t);
        switch (ev.kind) {
          case kDeparture: {
            if (ev.payload != link.version()) {
                break; // superseded by a later submit/departure
            }
            link.advanceTo(ev.t);
            for (const SimLink::Completion &c : link.takeCompleted()) {
                resolveAttempt(cams[static_cast<size_t>(c.endpoint)],
                               c.depart_t, c.energy);
            }
            scheduleDeparture();
            break;
          }
          case kSource:
            sourceStep(cams[static_cast<size_t>(ev.camera)], ev.t);
            break;
          case kTx:
            startAttempt(cams[static_cast<size_t>(ev.camera)], ev.t);
            break;
          default:
            incam_panic("unknown event kind ", ev.kind);
        }
    }

    for (Cam &cam : cams) {
        model_end = std::max(model_end, cam.clock.now());
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

void
SimEngine::sourceStep(Cam &cam, double t)
{
    if (cam.done) {
        return;
    }
    cam.clock.advanceTo(t);
    try {
        const StreamingPipeline::SourceStep step =
            cam.sp->nextFrame(cam.frame);
        if (step == StreamingPipeline::SourceStep::Done) {
            finishCamera(cam);
            return;
        }
        if (step == StreamingPipeline::SourceStep::Skipped) {
            scheduleSource(cam);
            return;
        }
        cam.plan = cam.sp->planDelivery(cam.frame);
        cam.out = StreamingPipeline::TxOutcome{};
        if (!cam.plan.attempt_remote) {
            // Local-delivery epoch: nothing crosses the medium.
            cam.sp->finishDelivery(cam.frame, cam.plan, cam.out);
            scheduleSource(cam);
            return;
        }
        if (!opts.pace_link) {
            countingDelivery(cam);
            scheduleSource(cam);
            return;
        }
        // Paced: the first attempt starts at the camera's own now (its
        // stages already advanced its clock past this event's time).
        sched.schedule(cam.clock.now(), cam.index, kTx);
    } catch (...) {
        failCamera(cam, std::current_exception());
    }
}

void
SimEngine::countingDelivery(Cam &cam)
{
    // The counting branch of StreamingPipeline::deliverFrame, step for
    // step: every attempt is priced and granted, losses come from the
    // interleaving-independent hash draw, backoff is accounted but
    // never slept — which is what makes counting-mode discrete-event
    // runs bit-identical to the threaded runtime.
    for (;;) {
        ++cam.out.attempts;
        cam.sp->obsTxAttempt(cam.frame, cam.out.attempts);
        const Energy e =
            link.price(cam.frame.bytes.b(), cam.frame.trace_time);
        link.countGrant(cam.index, cam.frame.bytes.b());
        cam.out.energy += e;
        cam.sp->obsTxGrant(cam.frame, cam.out.attempts, e);
        if (cam.out.attempts > 1) {
            cam.out.retry_bytes += cam.frame.bytes;
            cam.out.retry_energy += e;
        }
        if (!cam.sp->txAttemptLost(cam.frame, cam.out.attempts)) {
            cam.out.remote_ok = true;
            break;
        }
        cam.sp->obsTxLoss(cam.frame, cam.out.attempts);
        if (cam.out.attempts >= cam.plan.budget) {
            break;
        }
        const double wait =
            cam.sp->txBackoffWait(cam.frame, cam.out.attempts);
        cam.out.backoff_seconds += wait;
        cam.sp->obsTxBackoff(cam.frame, cam.out.attempts, wait);
    }
    cam.sp->finishDelivery(cam.frame, cam.plan, cam.out);
}

void
SimEngine::startAttempt(Cam &cam, double t)
{
    if (cam.done) {
        return;
    }
    cam.clock.advanceTo(t);
    ++cam.out.attempts;
    cam.sp->obsTxAttempt(cam.frame, cam.out.attempts);
    link.submit(cam.index, cam.frame.bytes.b(), t);
    scheduleDeparture();
}

void
SimEngine::resolveAttempt(Cam &cam, double t, Energy energy)
{
    if (cam.done) {
        return; // failed while its last attempt was in flight
    }
    cam.clock.advanceTo(t);
    cam.out.energy += energy;
    cam.sp->obsTxGrant(cam.frame, cam.out.attempts, energy);
    if (cam.out.attempts > 1) {
        cam.out.retry_bytes += cam.frame.bytes;
        cam.out.retry_energy += energy;
    }
    try {
        if (!cam.sp->txAttemptLost(cam.frame, cam.out.attempts)) {
            cam.out.remote_ok = true;
            cam.sp->finishDelivery(cam.frame, cam.plan, cam.out);
            scheduleSource(cam);
            return;
        }
        cam.sp->obsTxLoss(cam.frame, cam.out.attempts);
        if (cam.out.attempts >= cam.plan.budget) {
            cam.sp->finishDelivery(cam.frame, cam.plan, cam.out);
            scheduleSource(cam);
            return;
        }
        // Lost with budget left: sit out the jittered backoff on
        // model time, then submit the next attempt.
        const double wait =
            cam.sp->txBackoffWait(cam.frame, cam.out.attempts);
        cam.out.backoff_seconds += wait;
        cam.sp->obsTxBackoff(cam.frame, cam.out.attempts, wait);
        sched.schedule(t + wait, cam.index, kTx);
    } catch (...) {
        failCamera(cam, std::current_exception());
    }
}

void
SimEngine::scheduleSource(Cam &cam)
{
    double next = cam.clock.now();
    const RuntimeOptions &ro = cam.sp->runtimeOptions();
    if (!ro.pace_stages && !ro.pace_link && opts.trace_fps > 0.0) {
        // Fully counting run: nothing advances the camera's clock, so
        // the frame clock sequences cameras — frame n of every camera
        // happens at n / trace_fps, cameras interleaving by index.
        next = std::max(
            next, static_cast<double>(cam.sp->nextSourceId()) /
                      opts.trace_fps);
    }
    sched.schedule(next, cam.index, kSource);
}

void
SimEngine::scheduleDeparture()
{
    const double t = link.nextDepartureTime();
    if (t != std::numeric_limits<double>::infinity()) {
        sched.schedule(t, -1, kDeparture, link.version());
    }
}

void
SimEngine::finishCamera(Cam &cam)
{
    cam.done = true;
    link.release(cam.index);
}

void
SimEngine::failCamera(Cam &cam, std::exception_ptr error)
{
    cam.done = true;
    link.release(cam.index);
    if (!first_error) {
        first_error = std::move(error);
    }
}

} // namespace sim
} // namespace incam
