#include "sim/sim_link.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace incam {
namespace sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Virtual-work slop below which a transmission counts as drained.
 * Interval arithmetic like (0.7 - 0.2) rounds a hair short, so a
 * departure landing exactly on an advance target can come up an
 * epsilon of virtual bytes shy and would otherwise stay in flight at
 * its own departure instant — rescheduling the same event forever.
 * 1e-9 relative is orders of magnitude above accumulated rounding
 * and orders below any real payload residue.
 */
double
vSlop(double f)
{
    return 1e-9 * (std::abs(f) + 1.0);
}
} // namespace

SimLink::SimLink(NetworkLink link, Options options)
    : fixed(std::move(link)), opts(options)
{
}

int
SimLink::addEndpoint(std::string name, double weight)
{
    incam_assert(weight > 0.0, "endpoint '", name,
                 "' needs a positive weight");
    Ep ep;
    ep.name = std::move(name);
    ep.weight = weight;
    ep.gps_w = opts.policy == SharePolicy::Weighted ? weight : 1.0;
    endpoints.push_back(std::move(ep));
    return static_cast<int>(endpoints.size()) - 1;
}

SimLink::Piece
SimLink::pieceAt(double t) const
{
    Piece p;
    if (opts.trace == nullptr) {
        p.rate_bps = fixed.goodput().bytesPerSecond();
        p.ebit_j = fixed.energy_per_bit.j();
        p.until = kInf;
        return p;
    }
    const NetworkTrace &tr = *opts.trace;
    const double cur = std::max(0.0, t);
    const size_t i = tr.segmentIndex(Time::seconds(cur));
    const NetworkLink &l = tr.segment(i).link;
    p.rate_bps = l.goodput().bytesPerSecond();
    p.ebit_j = l.energy_per_bit.j();
    const double span = tr.duration().sec();
    const double seg_end = i + 1 < tr.segmentCount()
                               ? tr.segment(i + 1).start.sec()
                               : span;
    if (tr.periodic()) {
        double local = std::fmod(cur, span);
        if (local < 0.0) {
            local += span;
        }
        p.until = t + (seg_end - local);
    } else if (i + 1 < tr.segmentCount()) {
        p.until = seg_end;
    } else {
        p.until = kInf; // a non-periodic last segment holds forever
    }
    // Floating-point edge: sitting exactly on a boundary must still
    // make forward progress (cf. DynamicLink::drainLocked).
    p.until = std::max(p.until, t + 1e-12);
    return p;
}

SimLink::Tier *
SimLink::activeTier()
{
    for (auto &[rank, tier] : tiers) {
        if (!tier.heap.empty()) {
            return &tier;
        }
    }
    return nullptr;
}

const SimLink::Tier *
SimLink::activeTier() const
{
    for (const auto &[rank, tier] : tiers) {
        if (!tier.heap.empty()) {
            return &tier;
        }
    }
    return nullptr;
}

SimLink::Tier &
SimLink::tierOf(const Ep &ep)
{
    const double rank =
        opts.policy == SharePolicy::StrictPriority ? ep.weight : 0.0;
    return tiers[rank];
}

void
SimLink::submit(int endpoint, double bytes, double t)
{
    incam_assert(bytes >= 0.0, "negative transmission size");
    incam_assert(endpoint >= 0 &&
                     static_cast<size_t>(endpoint) < endpoints.size(),
                 "unknown endpoint ", endpoint);
    incam_assert(t >= last_t - 1e-9,
                 "submit at ", t, " precedes settled model time ",
                 last_t, ": events processed out of order");
    // Settle history first: bytes drained before this arrival drained
    // under the old active set (may pop departures at earlier times).
    advanceTo(std::max(t, last_t));
    Ep &ep = endpoints[static_cast<size_t>(endpoint)];
    incam_assert(!ep.active, "endpoint ", endpoint,
                 " has concurrent transmissions (uplinks are serial)");
    Tier &tier = tierOf(ep);
    ep.active = true;
    ep.inflight = bytes;
    ep.submit_t = t;
    ep.s0 = tier.s;
    tier.heap.push(
        HeapItem{tier.v + bytes / ep.gps_w, next_seq++, endpoint});
    tier.weight_sum += ep.gps_w;
    ++ver;
}

void
SimLink::popTop(Tier &tier, double t_dep)
{
    tier.v = tier.heap.top().f;
    const HeapItem item = tier.heap.top();
    tier.heap.pop();
    Ep &ep = endpoints[static_cast<size_t>(item.endpoint)];
    Completion c;
    c.endpoint = item.endpoint;
    c.depart_t = t_dep;
    c.energy = Energy::joules(ep.gps_w * (tier.s - ep.s0) * 8.0);
    ep.active = false;
    tier.weight_sum -= ep.gps_w;
    if (tier.heap.empty()) {
        tier.weight_sum = 0.0; // kill float residue
    }
    ++ep.grants;
    ep.bytes += ep.inflight;
    ep.wait_seconds += t_dep - ep.submit_t;
    ep.inflight = 0.0;
    done.push_back(std::move(c));
    ++ver;
}

void
SimLink::advanceTo(double t)
{
    for (;;) {
        Tier *tier = activeTier();
        // A transmission whose virtual finish is already reached (to
        // within rounding slop) is due *now*: it must pop even when
        // the target equals settled time, or sibling departures
        // sharing one instant would never resolve (the departure
        // event would reschedule forever).
        if (tier != nullptr &&
            tier->heap.top().f - tier->v <=
                vSlop(tier->heap.top().f)) {
            popTop(*tier, last_t);
            continue;
        }
        if (last_t >= t) {
            return;
        }
        const Piece p = pieceAt(last_t);
        const double end = std::min(t, p.until);
        if (tier == nullptr) {
            last_t = end;
            continue;
        }
        incam_assert(p.rate_bps > 0.0,
                     "paced SimLink needs positive goodput: nothing "
                     "can ever drain");
        const double need_v = tier->heap.top().f - tier->v;
        const double dv_cap =
            p.rate_bps * (end - last_t) / tier->weight_sum;
        if (need_v <= dv_cap) {
            // The earliest departure lands inside this piece: settle
            // exactly to it, pop it, and re-evaluate (the active set
            // — possibly the active *tier* — just changed).
            const double t_dep =
                last_t + need_v * tier->weight_sum / p.rate_bps;
            tier->s += p.ebit_j * need_v;
            last_t = t_dep;
            popTop(*tier, t_dep);
            continue;
        }
        tier->v += dv_cap;
        tier->s += p.ebit_j * dv_cap;
        last_t = end;
    }
}

double
SimLink::nextDepartureTime() const
{
    const Tier *tier = activeTier();
    if (tier == nullptr) {
        return kInf;
    }
    double need_v = std::max(0.0, tier->heap.top().f - tier->v);
    double t = last_t;
    for (;;) {
        const Piece p = pieceAt(t);
        incam_assert(p.rate_bps > 0.0,
                     "paced SimLink needs positive goodput: nothing "
                     "can ever drain");
        if (p.until == kInf) {
            return t + need_v * tier->weight_sum / p.rate_bps;
        }
        const double dv_cap =
            p.rate_bps * (p.until - t) / tier->weight_sum;
        if (need_v <= dv_cap) {
            return t + need_v * tier->weight_sum / p.rate_bps;
        }
        need_v -= dv_cap;
        t = p.until;
    }
}

std::vector<SimLink::Completion>
SimLink::takeCompleted()
{
    std::vector<Completion> out;
    out.swap(done);
    return out;
}

Energy
SimLink::price(double bytes, double trace_time_hint)
{
    incam_assert(bytes >= 0.0, "negative transmission size");
    if (opts.trace == nullptr) {
        return fixed.transferEnergy(DataSize::bytes(bytes));
    }
    // Mirror DynamicLink's counting mode: price at the frame-clock
    // hint when present (bit-deterministic), else at the occupancy
    // timeline, which the grant then advances by transfer time.
    const double t =
        trace_time_hint >= 0.0 ? trace_time_hint : count_free_t;
    const NetworkLink &l = opts.trace->at(Time::seconds(t));
    count_free_t = std::max(count_free_t, t) +
                   l.transferTime(DataSize::bytes(bytes)).sec();
    return l.transferEnergy(DataSize::bytes(bytes));
}

void
SimLink::countGrant(int endpoint, double bytes)
{
    incam_assert(endpoint >= 0 &&
                     static_cast<size_t>(endpoint) < endpoints.size(),
                 "unknown endpoint ", endpoint);
    Ep &ep = endpoints[static_cast<size_t>(endpoint)];
    ++ep.grants;
    ep.bytes += bytes;
}

void
SimLink::release(int endpoint)
{
    incam_assert(endpoint >= 0 &&
                     static_cast<size_t>(endpoint) < endpoints.size(),
                 "unknown endpoint ", endpoint);
    endpoints[static_cast<size_t>(endpoint)].released = true;
}

std::vector<LinkEndpointReport>
SimLink::report() const
{
    std::vector<LinkEndpointReport> out;
    out.reserve(endpoints.size());
    for (const Ep &ep : endpoints) {
        LinkEndpointReport r;
        r.name = ep.name;
        r.weight = ep.weight;
        r.grants = ep.grants;
        r.bytes = DataSize::bytes(ep.bytes);
        r.wait_seconds = ep.wait_seconds;
        r.released = ep.released;
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace sim
} // namespace incam
