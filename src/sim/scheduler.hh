/**
 * @file
 * EventScheduler — the discrete-event engine's ordered event queue.
 *
 * A discrete-event run is a loop over "the earliest pending thing":
 * pop the event with the smallest model time, advance that camera's
 * VirtualClock to it, execute its handler (which schedules future
 * events), repeat until the queue drains. The scheduler is therefore
 * nothing but a binary heap — but its *ordering* is load-bearing:
 * whenever two events carry the same model time (ubiquitous in
 * counting-mode runs, where whole frame cascades happen "at" the
 * frame clock instant), the pop order decides the interleaving of
 * cameras, and the interleaving decides cross-camera-visible state
 * like a fleet controller's reconfigure sweep. Ties break
 * deterministically on
 *
 *     (time, camera, kind, seq)
 *
 * — camera index first (camera 0, the fleet ticker, acts before its
 * siblings at the same instant, mirroring how it leads decisions),
 * then the event kind, then a global monotone sequence number so no
 * two events ever compare equal. The same run therefore pops the same
 * sequence on every host, which is what makes discrete-event ledgers
 * and adaptive decision logs bit-reproducible.
 *
 * Handlers are not stored in the event (a std::function per event
 * would cost an allocation per frame at 100k-camera scale); events
 * carry plain data and the engine dispatches on `kind`. `payload`
 * carries a version stamp for lazily-invalidated events (SimLink
 * departure estimates go stale whenever an arrival changes the GPS
 * rates; the engine just schedules a fresh estimate and skips stale
 * pops).
 */

#ifndef INCAM_SIM_SCHEDULER_HH
#define INCAM_SIM_SCHEDULER_HH

#include <cstdint>
#include <queue>
#include <vector>

namespace incam::sim {

/** One scheduled occurrence; plain data, dispatched by the engine. */
struct Event
{
    double t = 0.0;       ///< model time
    int32_t camera = -1;  ///< owning camera index (-1 = link-global)
    int32_t kind = 0;     ///< engine-defined dispatch tag ("stage")
    uint64_t seq = 0;     ///< global schedule order (final tie-break)
    uint64_t payload = 0; ///< kind-specific data (e.g. a version stamp)
};

/** Binary-heap event queue with the deterministic tie-break. */
class EventScheduler
{
  public:
    /** Enqueue; events in the past are legal (they pop first). */
    void
    schedule(double t, int32_t camera, int32_t kind,
             uint64_t payload = 0)
    {
        Event ev;
        ev.t = t;
        ev.camera = camera;
        ev.kind = kind;
        ev.seq = next_seq++;
        ev.payload = payload;
        heap.push(ev);
    }

    bool empty() const { return heap.empty(); }
    size_t pending() const { return heap.size(); }

    /** Total events ever scheduled (the engine's event count). */
    uint64_t scheduled() const { return next_seq; }

    /** Pop the earliest event under (t, camera, kind, seq) order. */
    Event
    pop()
    {
        Event ev = heap.top();
        heap.pop();
        return ev;
    }

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            // priority_queue keeps the *largest* on top, so "later
            // than" ordering yields the earliest event at top().
            if (a.t != b.t) {
                return a.t > b.t;
            }
            if (a.camera != b.camera) {
                return a.camera > b.camera;
            }
            if (a.kind != b.kind) {
                return a.kind > b.kind;
            }
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    uint64_t next_seq = 0;
};

} // namespace incam::sim

#endif // INCAM_SIM_SCHEDULER_HH
