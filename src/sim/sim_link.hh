/**
 * @file
 * SimLink — the discrete-event engine's shared-uplink model.
 *
 * fleet/SharedLink divides one medium by fluid weighted fair sharing
 * and blocks each caller's thread until its bytes drain. A 100k-camera
 * gateway cannot afford one blocked thread per camera, so the event
 * engine needs the *same fluid model* expressed as data: given the
 * set of in-flight transmissions, when does the next one finish?
 *
 * SimLink answers that with GPS virtual time. A tier's virtual clock v
 * advances at capacity / (total active weight), so every in-flight
 * transmission finishes at the fixed virtual instant
 *
 *     F = v(submit) + bytes / weight
 *
 * no matter how the active set churns while it drains — the heap of F
 * values is departure order, membership changes never reorder it, and
 * advancing the model is O(log n) per event instead of O(n) per
 * rate change. Radio energy uses the same trick: a tier integrates
 * S = per-bit price dv, and a transmission's joules are
 * weight x (S(depart) - S(submit)) x 8 — exact under mid-flight
 * setLink-style price changes, O(1) per transmission.
 *
 * Policies mirror SharedLink: Fair (one tier, unit weights), Weighted
 * (one tier, share weights), StrictPriority (one tier per rank; only
 * the highest tier with traffic drains, ties sharing evenly). A
 * NetworkTrace makes capacity and price piecewise: advances split at
 * segment boundaries, so drains and energies integrate segment-exact
 * like trace/DynamicLink's fluid timeline.
 *
 * Counting mode (the bit-equivalence gate) never models the medium:
 * price() reproduces the threaded arbiters' deterministic pricing —
 * trace.at(frame-clock hint) under a trace, the stationary link
 * otherwise — and countGrant() keeps the per-endpoint books.
 *
 * Single-threaded by design: only the event engine touches it, on
 * model time. No locks, no waiting — time is an argument.
 */

#ifndef INCAM_SIM_SIM_LINK_HH
#define INCAM_SIM_SIM_LINK_HH

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "core/fleet_model.hh"
#include "core/network.hh"
#include "runtime/report.hh"

namespace incam {

class NetworkTrace; // trace/trace.hh

namespace sim {

/** Virtual-time weighted-fair uplink model for the event engine. */
class SimLink
{
  public:
    struct Options
    {
        SharePolicy policy = SharePolicy::Fair;
        /**
         * Time-varying capacity and per-bit price; model time zero is
         * trace time zero. Must outlive the link. Null = stationary.
         */
        const NetworkTrace *trace = nullptr;
    };

    SimLink(NetworkLink link, Options options);

    /** Register a camera uplink; returns its endpoint id. */
    int addEndpoint(std::string name, double weight = 1.0);

    // ----------------------------- paced mode ------------------------

    /**
     * Start draining @p bytes for @p endpoint at model time @p t.
     * One transmission in flight per endpoint. Settles the fluid
     * state to @p t first; @p t must not precede the last settled
     * event (the engine processes events in time order).
     */
    void submit(int endpoint, double bytes, double t);

    /**
     * Model time of the next departure under the current active set
     * and the trace's capacity schedule; +infinity when idle. Pure.
     */
    double nextDepartureTime() const;

    /** Settle drains (and pop departures) up to model time @p t. */
    void advanceTo(double t);

    /** One finished transmission. */
    struct Completion
    {
        int endpoint = -1;
        double depart_t = 0.0; ///< model time the last byte drained
        Energy energy;         ///< radio joules, price-integrated
    };

    /** Departures popped by advanceTo() since the last call. */
    std::vector<Completion> takeCompleted();

    /**
     * Monotone stamp, bumped whenever the departure schedule may have
     * changed (submit, departure, release). The engine tags scheduled
     * departure events with it and drops stale ones.
     */
    uint64_t version() const { return ver; }

    // ---------------------------- counting mode ----------------------

    /**
     * Deterministic price of @p bytes at frame-clock position
     * @p trace_time_hint: the trace segment in force there (falling
     * back to the occupancy timeline when the hint is negative), or
     * the stationary link. Mirrors DynamicLink / SharedLink counting.
     */
    Energy price(double bytes, double trace_time_hint);

    /** Account a counting-mode grant for @p endpoint's books. */
    void countGrant(int endpoint, double bytes);

    // ------------------------------ common ---------------------------

    /** Mark the endpoint's stream complete (idempotent). */
    void release(int endpoint);

    /** Per-endpoint accounting, shaped like SharedLink::report(). */
    std::vector<LinkEndpointReport> report() const;

  private:
    /** Capacity and price in force at model time @p t, and the model
     *  time they hold until (+inf when stationary). */
    struct Piece
    {
        double rate_bps = 0.0; ///< goodput, bytes per model second
        double ebit_j = 0.0;   ///< radio joules per bit
        double until = 0.0;
    };
    Piece pieceAt(double t) const;

    struct HeapItem
    {
        double f = 0.0;    ///< virtual finish instant
        uint64_t seq = 0;  ///< submit order: deterministic F ties
        int endpoint = -1;
    };
    struct HeapLater
    {
        bool operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.f != b.f) {
                return a.f > b.f;
            }
            return a.seq > b.seq;
        }
    };

    /** One GPS sharing class: the whole link (Fair/Weighted) or one
     *  priority rank (StrictPriority). */
    struct Tier
    {
        double v = 0.0;          ///< virtual time, in bytes/weight
        double s = 0.0;          ///< integral of ebit_j dv
        double weight_sum = 0.0; ///< total weight in flight
        std::priority_queue<HeapItem, std::vector<HeapItem>, HeapLater>
            heap;
    };

    struct Ep
    {
        std::string name;
        double weight = 1.0; ///< share weight / priority rank
        double gps_w = 1.0;  ///< drain weight inside its tier
        bool active = false;
        double inflight = 0.0; ///< bytes of the in-flight transmission
        double submit_t = 0.0;
        double s0 = 0.0; ///< tier price integral at submit
        int64_t grants = 0;
        double bytes = 0.0;
        double wait_seconds = 0.0;
        bool released = false;
    };

    /** The tier currently draining: the only tier, or the highest
     *  rank with traffic in flight. Null when the medium is idle. */
    Tier *activeTier();
    const Tier *activeTier() const;
    Tier &tierOf(const Ep &ep);
    /** Complete @p tier's earliest transmission at @p t_dep. */
    void popTop(Tier &tier, double t_dep);

    NetworkLink fixed;
    Options opts;
    std::vector<Ep> endpoints;
    /** Rank -> tier, highest first; Fair/Weighted use the single key
     *  0. Node stability lets Ep flows hold tier state across churn. */
    std::map<double, Tier, std::greater<double>> tiers;
    std::vector<Completion> done;
    double last_t = 0.0;  ///< model time the fluid state is settled to
    double count_free_t = 0.0; ///< counting-mode occupancy timeline
    uint64_t next_seq = 0;
    uint64_t ver = 0;
};

} // namespace sim
} // namespace incam

#endif // INCAM_SIM_SIM_LINK_HH
