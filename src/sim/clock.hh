/**
 * @file
 * The time source abstraction under everything that paces or waits.
 *
 * Every timed component of the runtime — TokenBucket pacing,
 * SharedLink's fluid drain, DynamicLink's occupancy timeline, the
 * deadline check, backoff sleeps, latency stamps — reads *some* clock
 * and occasionally sleeps against it. Historically that clock was
 * hard-wired to std::chrono::steady_clock, which welds the runtime to
 * wall time: a 100k-camera fleet cannot be executed because 100k
 * cameras cannot sleep on a core count's worth of threads.
 *
 * Clock breaks the weld. Components take a `Clock *` and call now() /
 * sleepUntil() / sleepFor(); the implementation decides what a second
 * is:
 *
 *  - WallClock is the status quo: now() is steady_clock seconds since
 *    a fixed epoch and sleeps really sleep. All existing execution
 *    shapes (threaded stages, inline, thread-per-camera fleets) run on
 *    it unchanged, and it is the default everywhere.
 *
 *  - VirtualClock is *model time*: now() is a settable cursor and a
 *    sleep simply advances it. A pipeline run against a VirtualClock
 *    executes its entire timed behaviour — pacer debts, retry
 *    backoffs, link drains, latency percentiles — in model seconds at
 *    memory speed, which is what the discrete-event fleet engine
 *    (sim/engine.hh) builds on: one VirtualClock per camera, advanced
 *    by the event scheduler instead of by the host's sleep syscalls.
 *
 * All times are double seconds since the clock's epoch. A VirtualClock
 * is deliberately NOT thread-safe: virtual time belongs to exactly one
 * driving thread (the event loop), and handing it to concurrent stage
 * threads is a programming error the runtime asserts against.
 *
 * This module is the repo's *determinism boundary*: sim/clock.{hh,cc}
 * are the only files allowed to name std::chrono::steady_clock /
 * system_clock or to sleep on the host directly. Everything else must
 * go through a Clock, and tools/lint_invariants.py (run in CI) fails
 * the build on any raw wall-clock read outside this boundary — see
 * docs/static-analysis.md.
 */

#ifndef INCAM_SIM_CLOCK_HH
#define INCAM_SIM_CLOCK_HH

#include <chrono>

namespace incam::sim {

/** Seconds-based time source; wall or virtual (model time). */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Seconds since this clock's epoch. */
    virtual double now() = 0;

    /** Block (or advance) until now() >= t. Past deadlines return
     *  immediately; they never move time backwards. */
    virtual void sleepUntil(double t) = 0;

    /** Convenience: sleepUntil(now() + dt); dt <= 0 is a no-op. */
    void sleepFor(double dt);

    /**
     * True when this clock runs on model time (sleeping advances the
     * cursor instead of the host). Components with thread-based
     * waiting (condition variables, queues) use this to assert they
     * were not handed a clock they cannot honour, or to switch to a
     * synchronous single-threaded path.
     */
    virtual bool virtualTime() const = 0;
};

/** steady_clock seconds since construction; sleeps really sleep. */
class WallClock final : public Clock
{
  public:
    WallClock();

    double now() override;
    void sleepUntil(double t) override;
    bool virtualTime() const override { return false; }

    /**
     * The process-wide default instance every component falls back to
     * when no clock is injected — one shared epoch, so timestamps
     * taken by different components are directly comparable.
     */
    static WallClock &shared();

  private:
    std::chrono::steady_clock::time_point epoch;
};

/**
 * Model time: a settable cursor. sleepUntil(t) = advance the cursor to
 * t. Single-threaded by contract (see the file comment).
 */
class VirtualClock final : public Clock
{
  public:
    explicit VirtualClock(double start = 0.0) : t(start) {}

    double now() override { return t; }

    void
    sleepUntil(double when) override
    {
        if (when > t) {
            t = when;
        }
    }

    bool virtualTime() const override { return true; }

    /** The event loop's hand on the cursor (monotonic, like a sleep). */
    void advanceTo(double when) { sleepUntil(when); }

  private:
    double t;
};

} // namespace incam::sim

#endif // INCAM_SIM_CLOCK_HH
