#include "sim/clock.hh"

#include <thread>

namespace incam::sim {

void
Clock::sleepFor(double dt)
{
    if (dt > 0.0) {
        sleepUntil(now() + dt);
    }
}

WallClock::WallClock() : epoch(std::chrono::steady_clock::now()) {}

double
WallClock::now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
WallClock::sleepUntil(double t)
{
    std::this_thread::sleep_until(
        epoch + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(t)));
}

WallClock &
WallClock::shared()
{
    // Construct-on-first-use: components constructed during static
    // init still get a valid shared epoch.
    static WallClock instance;
    return instance;
}

} // namespace incam::sim
