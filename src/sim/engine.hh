/**
 * @file
 * SimEngine — many pipelines, one event loop, model time.
 *
 * The threaded fleet runtime spends a host thread (or a stage's worth
 * of threads) per camera and lets the kernel's scheduler interleave
 * them in wall time. SimEngine replaces the kernel: every camera is an
 * event source on its own VirtualClock, the binary-heap EventScheduler
 * totally orders {source cycles, transmission starts, retry backoffs,
 * link departures} on (time, camera, kind, seq), and one host core
 * replays the whole gateway in model time — 100k cameras are 100k
 * clock cursors, not 100k blocked threads.
 *
 * The engine does not reimplement the pipeline. It drives the exact
 * per-frame steps StreamingPipeline exposes for event composition —
 * nextFrame() / planDelivery() / txAttemptLost() / txBackoffWait() /
 * finishDelivery() — which are the same steps runInline() executes,
 * so a discrete-event run books frames through the same ledger and
 * telemetry code paths as every other execution shape. Stage and
 * source pacing happen *inside* nextFrame() against the camera's
 * VirtualClock; only the shared medium needs engine-side modeling,
 * which sim/SimLink provides as virtual-time weighted fair sharing.
 *
 * Two delivery regimes, mirroring the threaded arbiters:
 *
 *  - *Counting* (pace_link = false): a frame's whole retry schedule
 *    resolves synchronously at its emission instant — price, grant,
 *    hash-draw loss, accrued (never slept) backoff — exactly the
 *    branch deliverFrame() takes, so ledgers, energies and adaptive
 *    decisions are bit-identical to the threaded runtime.
 *
 *  - *Paced* (pace_link = true): each attempt is submitted to SimLink
 *    and the camera sits blocked in model time until the departure
 *    event resolves it; lost attempts reschedule after the jittered
 *    backoff. Fluid-fair sharing plays out exactly (virtual time), so
 *    paced discrete-event runs agree with the threaded fleet to the
 *    same tolerance the fleet's measured-vs-model gate uses.
 *
 * A camera that throws is failed in place: its endpoint is released
 * (the medium is work-conserving, survivors speed up), its remaining
 * events are ignored, and the first error is rethrown after every
 * surviving stream has wound down — the fleet contract.
 */

#ifndef INCAM_SIM_ENGINE_HH
#define INCAM_SIM_ENGINE_HH

#include <cstdint>
#include <deque>
#include <exception>
#include <string>
#include <vector>

#include "runtime/runtime.hh"
#include "sim/clock.hh"
#include "sim/scheduler.hh"
#include "sim/sim_link.hh"

namespace incam {

class NetworkTrace; // trace/trace.hh

namespace sim {

/** Discrete-event executor for a fleet of StreamingPipelines. */
class SimEngine
{
  public:
    struct Options
    {
        /** How the shared medium divides among cameras. */
        SharePolicy policy = SharePolicy::Fair;
        /** Model transmission airtime on the shared link; off, the
         *  counting regime prices traffic without occupying time. */
        bool pace_link = true;
        /** Time-varying link schedule; model time zero is trace time
         *  zero. Must outlive the engine. Null = stationary. */
        const NetworkTrace *trace = nullptr;
        /** Frame clock: with pacing fully off, camera i's frame n is
         *  sequenced at n / trace_fps, so cameras interleave on the
         *  frame clock instead of all at t = 0. */
        double trace_fps = 0.0;
    };

    SimEngine(NetworkLink link, Options options);

    /**
     * Register a camera. The pipeline must outlive the engine, must
     * not have an UplinkArbiter attached (the engine owns delivery),
     * and must be put on this camera's clock — setClock(cameraClock())
     * — before run(). Returns the camera index (== link endpoint).
     */
    int addCamera(StreamingPipeline *pipeline, std::string name,
                  double weight = 1.0);

    /** Camera @p camera's model-time clock (stable address). */
    VirtualClock *cameraClock(int camera);

    /**
     * Run every camera's stream to completion on model time. Single
     * use. Rethrows the first camera error after every surviving
     * stream has wound down; callers still finishRun() each pipeline
     * to collect reports.
     */
    void run();

    /** Model seconds the whole run spanned. */
    double modelSeconds() const { return model_end; }
    /** Events processed (the DES throughput denominator). */
    int64_t events() const { return n_events; }
    /** Per-endpoint medium accounting, SharedLink::report() shaped. */
    std::vector<LinkEndpointReport> linkReport() const
    {
        return link.report();
    }

  private:
    /** Event kinds; ties at one instant resolve departures first
     *  (camera -1), then by (camera, kind, seq). */
    enum Kind : int32_t
    {
        kDeparture = 0, ///< SimLink: some transmission finished
        kSource = 1,    ///< camera: run one nextFrame() cycle
        kTx = 2,        ///< camera: start the next paced attempt
    };

    struct Cam
    {
        StreamingPipeline *sp = nullptr;
        int index = -1;
        VirtualClock clock;
        Frame frame;
        StreamingPipeline::TxPlan plan;
        StreamingPipeline::TxOutcome out;
        bool done = false;
    };

    void sourceStep(Cam &cam, double t);
    void countingDelivery(Cam &cam);
    void startAttempt(Cam &cam, double t);
    void resolveAttempt(Cam &cam, double t, Energy energy);
    void scheduleSource(Cam &cam);
    void scheduleDeparture();
    void finishCamera(Cam &cam);
    void failCamera(Cam &cam, std::exception_ptr error);

    Options opts;
    SimLink link;
    EventScheduler sched;
    std::deque<Cam> cams; ///< deque: stable clock addresses
    std::exception_ptr first_error;
    double model_end = 0.0;
    int64_t n_events = 0;
    bool ran = false;
};

} // namespace sim
} // namespace incam

#endif // INCAM_SIM_ENGINE_HH
