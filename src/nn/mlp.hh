/**
 * @file
 * Multi-layer perceptron with floating-point training.
 *
 * The paper's face-authentication NN is trained with the Fast Artificial
 * Neural Network library (FANN) and deployed on the SNNAP-style systolic
 * accelerator. This module is the FANN substitute: dense feed-forward
 * networks with logistic activations, trained by full-batch iRPROP- (the
 * FANN default) or mini-batch SGD. The float network is the accuracy
 * reference that the quantized datapaths (quantized.hh) and the cycle-
 * level accelerator (snnap/) are measured against.
 */

#ifndef INCAM_NN_MLP_HH
#define INCAM_NN_MLP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "exec/exec_policy.hh"

namespace incam {

/** Layer-size description, e.g. {400, 8, 1} for the paper's 400-8-1 net. */
struct MlpTopology
{
    std::vector<int> layers;

    int inputs() const { return layers.front(); }
    int outputs() const { return layers.back(); }
    int layerCount() const { return static_cast<int>(layers.size()); }

    /** Total weight count including one bias per non-input neuron. */
    size_t weightCount() const;

    /** Multiply-accumulate operations per forward pass (no biases). */
    size_t macCount() const;

    /** Non-input neurons (sigmoid evaluations per forward pass). */
    size_t neuronCount() const;

    /** "400-8-1" style name. */
    std::string toString() const;
};

/** A supervised training set of (input, target) vector pairs. */
struct TrainSet
{
    std::vector<std::vector<float>> inputs;
    std::vector<std::vector<float>> targets;

    size_t size() const { return inputs.size(); }
    void
    add(std::vector<float> in, std::vector<float> out)
    {
        inputs.push_back(std::move(in));
        targets.push_back(std::move(out));
    }
};

/** Training hyper-parameters. */
struct TrainConfig
{
    enum class Algo { Rprop, Sgd };
    Algo algo = Algo::Rprop;
    int epochs = 200;
    double learning_rate = 0.7; ///< SGD only
    double target_mse = 1e-4;   ///< stop early below this train MSE
    uint64_t shuffle_seed = 5;  ///< SGD shuffle determinism
    /**
     * Clamp |weight| to this bound after every epoch (0 disables).
     * Keeping weights bounded is what makes the network quantizable to
     * narrow fixed-point formats — the accelerator deployment path.
     */
    double weight_clip = 12.0;
};

/** Dense feed-forward network with logistic activations. */
class Mlp
{
  public:
    /** Random small-weight initialization (deterministic per seed). */
    Mlp(MlpTopology topo, uint64_t seed);

    const MlpTopology &topology() const { return topo; }

    /**
     * Forward pass; input size must match the topology.
     *
     * The inference path: blocked matrix-vector products accumulating
     * in float with a fused bias+activation epilogue. (Training uses
     * forwardAll, which keeps the double-accumulation reference
     * arithmetic.)
     */
    std::vector<float> forward(const std::vector<float> &input) const;

    /**
     * Forward passes over a whole batch, parallelized across samples —
     * the deployment-shaped inference loop (each camera frame yields a
     * batch of candidate crops).
     */
    std::vector<std::vector<float>>
    forwardBatch(const std::vector<std::vector<float>> &inputs,
                 const ExecPolicy &pol = ExecPolicy::serial()) const;

    /**
     * Forward pass keeping every layer's activations (layer 0 is the
     * input). Used by backprop and by tests.
     */
    std::vector<std::vector<float>>
    forwardAll(const std::vector<float> &input) const;

    /** Train on @p set; returns the final mean-squared error. */
    double train(const TrainSet &set, const TrainConfig &cfg);

    /** Mean squared error over a set. */
    double evaluateMse(const TrainSet &set) const;

    /**
     * Weight from neuron @p from in layer @p layer to neuron @p to in
     * layer layer+1. @p from == fan-in is the bias.
     */
    float weight(int layer, int from, int to) const;
    void setWeight(int layer, int from, int to, float w);

    /** Largest absolute weight in layer @p layer (for quantization). */
    double maxAbsWeight(int layer) const;

    /** All weights of one layer, row-major [to][from], bias last. */
    const std::vector<float> &layerWeights(int layer) const;

    /** Logistic activation used throughout the network. */
    static double
    sigmoid(double x)
    {
        return 1.0 / (1.0 + std::exp(-x));
    }

    /** Clamp every weight into [-bound, bound] (0 disables). */
    void clipWeights(double bound);

  private:
    /** Gradient of the full-batch MSE; layout matches weights. */
    std::vector<std::vector<float>>
    batchGradient(const TrainSet &set) const;

    void trainRprop(const TrainSet &set, const TrainConfig &cfg);
    void trainSgd(const TrainSet &set, const TrainConfig &cfg);

    MlpTopology topo;
    /** weights[l] connects layer l to l+1: (fan_in + 1) * fan_out. */
    std::vector<std::vector<float>> weights;
};

} // namespace incam

#endif // INCAM_NN_MLP_HH
