/**
 * @file
 * Fixed-point quantized MLP inference — the accelerator's numerics.
 *
 * Section III-A of the paper studies two precision knobs on the NN
 * accelerator: (1) approximating the sigmoid with a 256-entry LUT and
 * (2) narrowing the datapath to 16/8/4-bit fixed point. QuantizedMlp
 * reproduces the accelerator arithmetic bit-exactly in software:
 * per-layer weight formats, a saturating wide accumulator (the paper's
 * datapath carries 26-bit partial sums for 8-bit operands), and LUT or
 * precise activation. The SNNAP cycle-level simulator executes the same
 * raw integer math and is validated against this model sample-by-sample.
 */

#ifndef INCAM_NN_QUANTIZED_HH
#define INCAM_NN_QUANTIZED_HH

#include <vector>

#include "common/fixed.hh"
#include "nn/mlp.hh"

namespace incam {

/** Numeric configuration of the accelerator datapath. */
struct QuantConfig
{
    int width = 8;           ///< operand width (weights & activations)
    bool lut_sigmoid = true; ///< 256-entry LUT vs precise sigmoid
    int lut_entries = 256;
    double lut_range = 8.0;  ///< LUT input domain is [-range, range)
    /**
     * Saturating accumulator width; 0 selects the hardware default of
     * 2 * width + 10 bits — 26 bits for the paper's 8-bit datapath
     * (Fig. 3 shows 26-bit partial-sum adders).
     */
    int acc_bits = 0;

    /** The accumulator width actually used. */
    int
    accBits() const
    {
        return acc_bits > 0 ? acc_bits : 2 * width + 10;
    }

    std::string toString() const;
};

/** Integer-domain MLP mirroring the SNNAP datapath. */
class QuantizedMlp
{
  public:
    /** Quantize a trained float network under the given config. */
    QuantizedMlp(const Mlp &reference, const QuantConfig &cfg);

    const QuantConfig &config() const { return conf; }
    const MlpTopology &topology() const { return topo; }

    /** Format used for all activations (inputs and sigmoid outputs). */
    const FixedFormat &activationFormat() const { return act_fmt; }

    /** Per-layer weight format (range-fitted to that layer's weights). */
    const FixedFormat &weightFormat(int layer) const;

    /** Raw quantized weights of one layer, [to][from] plus bias last. */
    const std::vector<int64_t> &rawWeights(int layer) const;

    /** The sigmoid LUT contents (raw activation-format values). */
    const std::vector<int64_t> &sigmoidLut() const { return lut; }

    /** Quantize a float input vector into raw activation values. */
    std::vector<int64_t> quantizeInput(const std::vector<float> &in) const;

    /**
     * Activation function applied to a raw accumulator of layer @p layer.
     * Exposed so the cycle-level simulator can share the exact math.
     */
    int64_t activateRaw(int64_t acc_raw, int layer) const;

    /** Saturating accumulator addition at the configured width. */
    int64_t
    accumulate(int64_t acc, int64_t addend) const
    {
        return saturate(acc + addend, acc_format);
    }

    /** Bias of neuron @p to in layer @p layer, pre-scaled to acc format. */
    int64_t biasRaw(int layer, int to) const;

    /** Full forward pass; returns dequantized outputs. */
    std::vector<double> forward(const std::vector<float> &input) const;

    /** Per-layer raw activations, index 0 = quantized input. */
    std::vector<std::vector<int64_t>>
    forwardRaw(const std::vector<float> &input) const;

    /** Mean |float - quantized| output discrepancy over a set. */
    double outputError(const Mlp &reference, const TrainSet &set) const;

  private:
    MlpTopology topo;
    QuantConfig conf;
    FixedFormat act_fmt;
    FixedFormat acc_format;              ///< accumulator: acc_bits wide
    std::vector<FixedFormat> w_fmts;     ///< per layer
    std::vector<std::vector<int64_t>> w; ///< raw weights per layer
    std::vector<int64_t> lut;            ///< sigmoid LUT (may be empty)
};

} // namespace incam

#endif // INCAM_NN_QUANTIZED_HH
