/**
 * @file
 * Binary-classifier evaluation helpers.
 *
 * The paper reports the authentication NN's quality as classification
 * error (5.9% for the 400-8-1 topology on the LFW split) and as accuracy
 * loss relative to a float implementation for the quantized datapaths.
 * These helpers score any scalar predictor against a 0/1-target TrainSet
 * and compute the float-vs-quantized accuracy delta.
 */

#ifndef INCAM_NN_EVAL_HH
#define INCAM_NN_EVAL_HH

#include <functional>

#include "common/stats.hh"
#include "nn/mlp.hh"
#include "nn/quantized.hh"

namespace incam {

/** A predictor maps an input vector to a score in [0, 1]. */
using Predictor = std::function<double(const std::vector<float> &)>;

/** Wrap a float MLP (first output neuron) as a Predictor. */
Predictor predictorOf(const Mlp &net);

/** Wrap a quantized MLP (first output neuron) as a Predictor. */
Predictor predictorOf(const QuantizedMlp &net);

/**
 * Score a predictor against a set whose targets are 0/1 scalars.
 * A sample counts positive when the score exceeds @p threshold.
 */
Confusion evaluateBinary(const Predictor &predict, const TrainSet &set,
                         double threshold = 0.5);

/**
 * Absolute accuracy loss of @p quantized relative to @p reference on
 * @p set — the paper's precision-study metric ("0.4% accuracy loss").
 * Positive values mean the quantized network is less accurate.
 */
double accuracyLoss(const Mlp &reference, const QuantizedMlp &quantized,
                    const TrainSet &set, double threshold = 0.5);

} // namespace incam

#endif // INCAM_NN_EVAL_HH
