#include "nn/quantized.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace incam {

std::string
QuantConfig::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%db/%s-sigmoid/acc%d", width,
                  lut_sigmoid ? "lut" : "precise", accBits());
    return buf;
}

QuantizedMlp::QuantizedMlp(const Mlp &reference, const QuantConfig &cfg)
    : topo(reference.topology()), conf(cfg)
{
    incam_assert(cfg.width >= 2 && cfg.width <= 24,
                 "unsupported datapath width ", cfg.width);
    incam_assert(cfg.accBits() > cfg.width,
                 "accumulator must be wider than the datapath");
    incam_assert(cfg.lut_entries >= 2, "LUT needs >= 2 entries");

    // Activations live in [0, 1): all bits after the sign are fraction.
    act_fmt = FixedFormat{cfg.width, cfg.width - 1};

    const int n_layers = topo.layerCount() - 1;
    w_fmts.resize(n_layers);
    w.resize(n_layers);
    for (int l = 0; l < n_layers; ++l) {
        w_fmts[l] = bestFormatFor(reference.maxAbsWeight(l), cfg.width);
        const auto &src = reference.layerWeights(l);
        w[l].resize(src.size());
        for (size_t i = 0; i < src.size(); ++i) {
            w[l][i] = quantize(src[i], w_fmts[l]);
        }
    }

    // Accumulator format: accBits() wide, fraction = weight frac +
    // activation frac of the layer being computed. The fraction varies by
    // layer; we keep the width here and handle fractions at use sites.
    acc_format = FixedFormat{cfg.accBits(), 0};

    if (cfg.lut_sigmoid) {
        lut.resize(cfg.lut_entries);
        for (int i = 0; i < cfg.lut_entries; ++i) {
            const double x =
                -cfg.lut_range +
                2.0 * cfg.lut_range * (i + 0.5) / cfg.lut_entries;
            lut[i] = quantize(Mlp::sigmoid(x), act_fmt);
        }
    }
}

const FixedFormat &
QuantizedMlp::weightFormat(int layer) const
{
    incam_assert(layer >= 0 && layer < static_cast<int>(w_fmts.size()),
                 "bad layer ", layer);
    return w_fmts[layer];
}

const std::vector<int64_t> &
QuantizedMlp::rawWeights(int layer) const
{
    incam_assert(layer >= 0 && layer < static_cast<int>(w.size()),
                 "bad layer ", layer);
    return w[layer];
}

std::vector<int64_t>
QuantizedMlp::quantizeInput(const std::vector<float> &in) const
{
    incam_assert(static_cast<int>(in.size()) == topo.inputs(),
                 "input size mismatch");
    std::vector<int64_t> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        out[i] = quantize(in[i], act_fmt);
    }
    return out;
}

int64_t
QuantizedMlp::biasRaw(int layer, int to) const
{
    const int fan_in = topo.layers[layer];
    const int64_t raw =
        w[layer][static_cast<size_t>(to) * (fan_in + 1) + fan_in];
    // Scale from weight fraction to accumulator fraction
    // (w_frac + act_frac), i.e. multiply by an exact 1.0 activation.
    return rescale(raw, 0, act_fmt.frac);
}

int64_t
QuantizedMlp::activateRaw(int64_t acc_raw, int layer) const
{
    const int acc_frac = w_fmts[layer].frac + act_fmt.frac;
    if (!conf.lut_sigmoid) {
        const double x = static_cast<double>(acc_raw) /
                         static_cast<double>(int64_t{1} << acc_frac);
        return quantize(Mlp::sigmoid(x), act_fmt);
    }
    // LUT lookup: map the accumulator's real value into [0, entries).
    const double x = static_cast<double>(acc_raw) /
                     static_cast<double>(int64_t{1} << acc_frac);
    const double t = (x + conf.lut_range) / (2.0 * conf.lut_range) *
                     static_cast<double>(conf.lut_entries);
    int idx = static_cast<int>(std::floor(t));
    idx = std::clamp(idx, 0, conf.lut_entries - 1);
    return lut[static_cast<size_t>(idx)];
}

std::vector<std::vector<int64_t>>
QuantizedMlp::forwardRaw(const std::vector<float> &input) const
{
    std::vector<std::vector<int64_t>> acts;
    acts.push_back(quantizeInput(input));
    for (int l = 0; l + 1 < topo.layerCount(); ++l) {
        const int fan_in = topo.layers[l];
        const int fan_out = topo.layers[l + 1];
        std::vector<int64_t> next(fan_out);
        const std::vector<int64_t> &prev = acts.back();
        for (int to = 0; to < fan_out; ++to) {
            const int64_t *row =
                &w[l][static_cast<size_t>(to) * (fan_in + 1)];
            int64_t acc = biasRaw(l, to);
            for (int from = 0; from < fan_in; ++from) {
                acc = accumulate(acc, fixedMul(row[from], prev[from]));
            }
            next[to] = activateRaw(acc, l);
        }
        acts.push_back(std::move(next));
    }
    return acts;
}

std::vector<double>
QuantizedMlp::forward(const std::vector<float> &input) const
{
    const auto acts = forwardRaw(input);
    std::vector<double> out(acts.back().size());
    for (size_t i = 0; i < out.size(); ++i) {
        out[i] = dequantize(acts.back()[i], act_fmt);
    }
    return out;
}

double
QuantizedMlp::outputError(const Mlp &reference, const TrainSet &set) const
{
    incam_assert(set.size() > 0, "empty set");
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < set.size(); ++i) {
        const auto f = reference.forward(set.inputs[i]);
        const auto q = forward(set.inputs[i]);
        for (size_t o = 0; o < f.size(); ++o) {
            acc += std::fabs(static_cast<double>(f[o]) - q[o]);
            ++n;
        }
    }
    return acc / static_cast<double>(n);
}

} // namespace incam
