#include "nn/eval.hh"

#include "common/logging.hh"

namespace incam {

Predictor
predictorOf(const Mlp &net)
{
    return [&net](const std::vector<float> &in) {
        return static_cast<double>(net.forward(in).front());
    };
}

Predictor
predictorOf(const QuantizedMlp &net)
{
    return [&net](const std::vector<float> &in) {
        return net.forward(in).front();
    };
}

Confusion
evaluateBinary(const Predictor &predict, const TrainSet &set,
               double threshold)
{
    incam_assert(set.size() > 0, "empty evaluation set");
    Confusion c;
    for (size_t i = 0; i < set.size(); ++i) {
        incam_assert(set.targets[i].size() == 1,
                     "binary evaluation needs scalar targets");
        const bool actual = set.targets[i][0] > 0.5f;
        const bool predicted = predict(set.inputs[i]) > threshold;
        c.tally(predicted, actual);
    }
    return c;
}

double
accuracyLoss(const Mlp &reference, const QuantizedMlp &quantized,
             const TrainSet &set, double threshold)
{
    const Confusion ref = evaluateBinary(predictorOf(reference), set,
                                         threshold);
    const Confusion quant = evaluateBinary(predictorOf(quantized), set,
                                           threshold);
    return ref.accuracy() - quant.accuracy();
}

} // namespace incam
