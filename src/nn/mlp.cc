#include "nn/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "exec/parallel.hh"

namespace incam {

size_t
MlpTopology::weightCount() const
{
    size_t n = 0;
    for (size_t l = 0; l + 1 < layers.size(); ++l) {
        n += static_cast<size_t>(layers[l] + 1) * layers[l + 1];
    }
    return n;
}

size_t
MlpTopology::macCount() const
{
    size_t n = 0;
    for (size_t l = 0; l + 1 < layers.size(); ++l) {
        n += static_cast<size_t>(layers[l]) * layers[l + 1];
    }
    return n;
}

size_t
MlpTopology::neuronCount() const
{
    size_t n = 0;
    for (size_t l = 1; l < layers.size(); ++l) {
        n += static_cast<size_t>(layers[l]);
    }
    return n;
}

std::string
MlpTopology::toString() const
{
    std::string out;
    for (size_t l = 0; l < layers.size(); ++l) {
        out += std::to_string(layers[l]);
        if (l + 1 < layers.size()) {
            out += "-";
        }
    }
    return out;
}

Mlp::Mlp(MlpTopology topology, uint64_t seed) : topo(std::move(topology))
{
    incam_assert(topo.layers.size() >= 2, "an MLP needs >= 2 layers");
    for (int n : topo.layers) {
        incam_assert(n > 0, "layer sizes must be positive");
    }
    Rng rng(seed);
    weights.resize(topo.layers.size() - 1);
    for (size_t l = 0; l + 1 < topo.layers.size(); ++l) {
        const int fan_in = topo.layers[l];
        const int fan_out = topo.layers[l + 1];
        weights[l].resize(static_cast<size_t>(fan_in + 1) * fan_out);
        // Xavier-style range keeps sigmoids out of saturation at init.
        const double range = std::sqrt(6.0 / (fan_in + fan_out));
        for (auto &w : weights[l]) {
            w = static_cast<float>(rng.uniform(-range, range));
        }
    }
}

float
Mlp::weight(int layer, int from, int to) const
{
    const int fan_in = topo.layers[layer];
    incam_assert(layer >= 0 && layer + 1 < topo.layerCount(), "bad layer");
    incam_assert(from >= 0 && from <= fan_in, "bad 'from' index");
    incam_assert(to >= 0 && to < topo.layers[layer + 1], "bad 'to' index");
    return weights[layer][static_cast<size_t>(to) * (fan_in + 1) + from];
}

void
Mlp::setWeight(int layer, int from, int to, float w)
{
    const int fan_in = topo.layers[layer];
    incam_assert(layer >= 0 && layer + 1 < topo.layerCount(), "bad layer");
    incam_assert(from >= 0 && from <= fan_in, "bad 'from' index");
    incam_assert(to >= 0 && to < topo.layers[layer + 1], "bad 'to' index");
    weights[layer][static_cast<size_t>(to) * (fan_in + 1) + from] = w;
}

double
Mlp::maxAbsWeight(int layer) const
{
    incam_assert(layer >= 0 && layer + 1 < topo.layerCount(), "bad layer");
    double m = 0.0;
    for (float w : weights[layer]) {
        m = std::max(m, std::fabs(static_cast<double>(w)));
    }
    return m;
}

const std::vector<float> &
Mlp::layerWeights(int layer) const
{
    incam_assert(layer >= 0 && layer + 1 < topo.layerCount(), "bad layer");
    return weights[layer];
}

std::vector<std::vector<float>>
Mlp::forwardAll(const std::vector<float> &input) const
{
    incam_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input size ", input.size(), " != topology input ",
                 topo.inputs());
    std::vector<std::vector<float>> acts;
    acts.push_back(input);
    for (size_t l = 0; l + 1 < topo.layers.size(); ++l) {
        const int fan_in = topo.layers[l];
        const int fan_out = topo.layers[l + 1];
        std::vector<float> next(fan_out);
        const std::vector<float> &prev = acts.back();
        for (int to = 0; to < fan_out; ++to) {
            const float *row =
                &weights[l][static_cast<size_t>(to) * (fan_in + 1)];
            double acc = row[fan_in]; // bias
            for (int from = 0; from < fan_in; ++from) {
                acc += static_cast<double>(row[from]) * prev[from];
            }
            next[to] = static_cast<float>(sigmoid(acc));
        }
        acts.push_back(std::move(next));
    }
    return acts;
}

std::vector<float>
Mlp::forward(const std::vector<float> &input) const
{
    incam_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input size ", input.size(), " != topology input ",
                 topo.inputs());
    std::vector<float> cur = input;
    std::vector<float> next;
    for (size_t l = 0; l + 1 < topo.layers.size(); ++l) {
        const int fan_in = topo.layers[l];
        const int fan_out = topo.layers[l + 1];
        const size_t row_stride = static_cast<size_t>(fan_in) + 1;
        const float *wl = weights[l].data();
        const float *prev = cur.data();
        next.assign(static_cast<size_t>(fan_out), 0.0f);

        // Blocked matvec: 4 output rows share one streaming pass over
        // the activations, keeping 4 independent accumulator chains.
        int to = 0;
        for (; to + 4 <= fan_out; to += 4) {
            const float *r0 = wl + static_cast<size_t>(to) * row_stride;
            const float *r1 = r0 + row_stride;
            const float *r2 = r1 + row_stride;
            const float *r3 = r2 + row_stride;
            float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
            for (int from = 0; from < fan_in; ++from) {
                const float p = prev[from];
                a0 += r0[from] * p;
                a1 += r1[from] * p;
                a2 += r2[from] * p;
                a3 += r3[from] * p;
            }
            // Fused bias + activation epilogue.
            next[to + 0] = static_cast<float>(sigmoid(a0 + r0[fan_in]));
            next[to + 1] = static_cast<float>(sigmoid(a1 + r1[fan_in]));
            next[to + 2] = static_cast<float>(sigmoid(a2 + r2[fan_in]));
            next[to + 3] = static_cast<float>(sigmoid(a3 + r3[fan_in]));
        }
        for (; to < fan_out; ++to) {
            const float *row = wl + static_cast<size_t>(to) * row_stride;
            float acc = 0.0f;
            for (int from = 0; from < fan_in; ++from) {
                acc += row[from] * prev[from];
            }
            next[to] = static_cast<float>(sigmoid(acc + row[fan_in]));
        }
        cur.swap(next);
    }
    return cur;
}

std::vector<std::vector<float>>
Mlp::forwardBatch(const std::vector<std::vector<float>> &inputs,
                  const ExecPolicy &pol) const
{
    std::vector<std::vector<float>> out(inputs.size());
    // Samples are independent, so any partitioning is bit-identical.
    parallel_for(0, static_cast<int64_t>(inputs.size()), pol,
                 [&](int64_t b, int64_t e) {
                     for (int64_t i = b; i < e; ++i) {
                         out[i] = forward(inputs[i]);
                     }
                 });
    return out;
}

void
Mlp::clipWeights(double bound)
{
    if (bound <= 0.0) {
        return;
    }
    const float b = static_cast<float>(bound);
    for (auto &layer : weights) {
        for (auto &w : layer) {
            w = std::clamp(w, -b, b);
        }
    }
}

double
Mlp::evaluateMse(const TrainSet &set) const
{
    incam_assert(set.size() > 0, "empty evaluation set");
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < set.size(); ++i) {
        const std::vector<float> out = forward(set.inputs[i]);
        incam_assert(out.size() == set.targets[i].size(),
                     "target size mismatch");
        for (size_t o = 0; o < out.size(); ++o) {
            const double d =
                static_cast<double>(out[o]) - set.targets[i][o];
            acc += d * d;
            ++n;
        }
    }
    return acc / static_cast<double>(n);
}

std::vector<std::vector<float>>
Mlp::batchGradient(const TrainSet &set) const
{
    std::vector<std::vector<float>> grad(weights.size());
    for (size_t l = 0; l < weights.size(); ++l) {
        grad[l].assign(weights[l].size(), 0.0f);
    }

    for (size_t s = 0; s < set.size(); ++s) {
        const auto acts = forwardAll(set.inputs[s]);
        // Output deltas: dE/dnet = (y - t) * y(1-y) for MSE + sigmoid.
        std::vector<float> delta(acts.back().size());
        for (size_t o = 0; o < delta.size(); ++o) {
            const float y = acts.back()[o];
            delta[o] = (y - set.targets[s][o]) * y * (1.0f - y);
        }
        for (int l = static_cast<int>(weights.size()) - 1; l >= 0; --l) {
            const int fan_in = topo.layers[l];
            const int fan_out = topo.layers[l + 1];
            const std::vector<float> &prev = acts[l];
            for (int to = 0; to < fan_out; ++to) {
                float *grow =
                    &grad[l][static_cast<size_t>(to) * (fan_in + 1)];
                const float d = delta[to];
                for (int from = 0; from < fan_in; ++from) {
                    grow[from] += d * prev[from];
                }
                grow[fan_in] += d; // bias
            }
            if (l > 0) {
                // Back-propagate delta through layer l's weights.
                std::vector<float> prev_delta(fan_in, 0.0f);
                for (int to = 0; to < fan_out; ++to) {
                    const float *row =
                        &weights[l][static_cast<size_t>(to) * (fan_in + 1)];
                    for (int from = 0; from < fan_in; ++from) {
                        prev_delta[from] += delta[to] * row[from];
                    }
                }
                for (int from = 0; from < fan_in; ++from) {
                    const float a = acts[l][from];
                    prev_delta[from] *= a * (1.0f - a);
                }
                delta = std::move(prev_delta);
            }
        }
    }
    const float scale = 1.0f / static_cast<float>(set.size());
    for (auto &layer : grad) {
        for (auto &g : layer) {
            g *= scale;
        }
    }
    return grad;
}

void
Mlp::trainRprop(const TrainSet &set, const TrainConfig &cfg)
{
    // iRPROP- (Igel & Huesken): sign-based full-batch updates.
    constexpr double eta_plus = 1.2;
    constexpr double eta_minus = 0.5;
    constexpr double delta_max = 50.0;
    constexpr double delta_min = 1e-6;

    std::vector<std::vector<double>> step(weights.size());
    std::vector<std::vector<float>> prev_grad(weights.size());
    for (size_t l = 0; l < weights.size(); ++l) {
        step[l].assign(weights[l].size(), 0.0125);
        prev_grad[l].assign(weights[l].size(), 0.0f);
    }

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        const auto grad = batchGradient(set);
        for (size_t l = 0; l < weights.size(); ++l) {
            for (size_t i = 0; i < weights[l].size(); ++i) {
                const double g = grad[l][i];
                const double sign_product =
                    g * static_cast<double>(prev_grad[l][i]);
                if (sign_product > 0.0) {
                    step[l][i] = std::min(step[l][i] * eta_plus, delta_max);
                } else if (sign_product < 0.0) {
                    step[l][i] = std::max(step[l][i] * eta_minus, delta_min);
                    prev_grad[l][i] = 0.0f; // iRPROP-: skip update
                    continue;
                }
                if (g > 0.0) {
                    weights[l][i] -= static_cast<float>(step[l][i]);
                } else if (g < 0.0) {
                    weights[l][i] += static_cast<float>(step[l][i]);
                }
                prev_grad[l][i] = grad[l][i];
            }
        }
        clipWeights(cfg.weight_clip);
        if (cfg.target_mse > 0.0 && evaluateMse(set) < cfg.target_mse) {
            return;
        }
    }
}

void
Mlp::trainSgd(const TrainSet &set, const TrainConfig &cfg)
{
    Rng rng(cfg.shuffle_seed);
    std::vector<size_t> order(set.size());
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic RNG.
        for (size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.below(i)]);
        }
        for (size_t idx : order) {
            TrainSet one;
            one.inputs.push_back(set.inputs[idx]);
            one.targets.push_back(set.targets[idx]);
            const auto grad = batchGradient(one);
            for (size_t l = 0; l < weights.size(); ++l) {
                for (size_t i = 0; i < weights[l].size(); ++i) {
                    weights[l][i] -= static_cast<float>(cfg.learning_rate) *
                                     grad[l][i];
                }
            }
        }
        clipWeights(cfg.weight_clip);
        if (cfg.target_mse > 0.0 && evaluateMse(set) < cfg.target_mse) {
            return;
        }
    }
}

double
Mlp::train(const TrainSet &set, const TrainConfig &cfg)
{
    incam_assert(set.size() > 0, "cannot train on an empty set");
    incam_assert(set.inputs.size() == set.targets.size(),
                 "inputs/targets size mismatch");
    for (size_t i = 0; i < set.size(); ++i) {
        incam_assert(static_cast<int>(set.inputs[i].size()) == topo.inputs(),
                     "sample ", i, " input size mismatch");
        incam_assert(
            static_cast<int>(set.targets[i].size()) == topo.outputs(),
            "sample ", i, " target size mismatch");
    }
    if (cfg.algo == TrainConfig::Algo::Rprop) {
        trainRprop(set, cfg);
    } else {
        trainSgd(set, cfg);
    }
    return evaluateMse(set);
}

} // namespace incam
