#!/usr/bin/env python3
"""Repo invariant linter — the determinism and concurrency boundaries.

The codebase keeps several invariants that no compiler checks:

  wall-clock        All raw wall-time reads (std::chrono::steady_clock,
                    system_clock, high_resolution_clock, this_thread
                    sleeps) are confined to src/sim/clock.{hh,cc} — the
                    determinism boundary. Everything else must read an
                    injected sim::Clock, or a VirtualClock run silently
                    re-acquires a wall-time dependency.

  rng               All randomness is confined to src/common/rng.hh
                    (counter-hashed, seed-stable). rand()/srand(),
                    std::random_device, mt19937 and friends anywhere
                    else break run reproducibility.

  raw-mutex         std::mutex / lock_guard / unique_lock / scoped_lock
                    spellings are confined to src/common/thread_safety.hh.
                    Everything else uses AnnotatedMutex + MutexLock so
                    Clang thread-safety analysis sees every lock site.

  ledger-pairing    Any file that writes one of the LossLedger roll-up
                    fields `offered`, `delivered`, `dropped` must write
                    all three: the frame-accounting invariant
                    offered == delivered + dropped only survives when a
                    mutation site updates the trio together.

  arbiter-contract  Files named uplink.hh must state the audited
                    "UplinkArbiter contract" and keep a documentation
                    comment immediately adjacent to every virtual
                    acquire()/release() declaration, so the contract
                    cannot drift away from the interface it governs.

  obs-clock         The observability layer (src/obs/) never reads time
                    itself: every event timestamp is an *argument*,
                    stamped by the runtime off its injected sim::Clock
                    (or the frame clock). Any host time API under
                    src/obs/ — std::chrono, gettimeofday, clock_gettime,
                    timespec_get, clock() — would silently break the
                    byte-identical-trace determinism contract. Unlike
                    the other token rules, this one is *restricted to*
                    a path prefix rather than allowing exceptions.

Suppression: append `// lint:allow(rule)` (or `lint:allow(rule1,rule2)`)
to the offending line, with a reason after a colon if you like:

    auto t = std::chrono::steady_clock::now(); // lint:allow(wall-clock): boot probe

Suppressions are per-line and per-rule; there is no file-level blanket.

Usage:
    python3 tools/lint_invariants.py [--root DIR] [FILE...]

With no FILE arguments the linter scans every *.hh/*.cc under
<root>/src. Explicit FILE arguments scan exactly those files (the test
fixtures use this). Exit status 0 when clean, 1 with findings (one per
line: path:line: [rule] message), 2 on usage errors.
"""

import argparse
import os
import re
import sys

SOURCE_EXTS = (".hh", ".cc", ".h", ".cpp")

# Files (by repo-relative suffix) allowed to use the banned tokens.
ALLOWED = {
    "wall-clock": ("src/sim/clock.hh", "src/sim/clock.cc"),
    "rng": ("src/common/rng.hh",),
    "raw-mutex": ("src/common/thread_safety.hh",),
}

# Rules that only apply to files whose path contains one of the given
# prefixes (the inverse of ALLOWED: scoped bans instead of exemptions).
RESTRICTED = {
    "obs-clock": ("src/obs/",),
}

TOKEN_RULES = {
    "wall-clock": [
        (re.compile(r"\bsteady_clock\b"), "raw steady_clock read"),
        (re.compile(r"\bsystem_clock\b"), "raw system_clock read"),
        (re.compile(r"\bhigh_resolution_clock\b"),
         "raw high_resolution_clock read"),
        (re.compile(r"\bthis_thread\s*::\s*sleep_(for|until)\b"),
         "raw host sleep"),
    ],
    "rng": [
        (re.compile(r"(?<!\w)s?rand\s*\("), "C rand()/srand()"),
        (re.compile(r"\brandom_device\b"), "std::random_device"),
        (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
        (re.compile(r"\bdefault_random_engine\b"),
         "std::default_random_engine"),
    ],
    "raw-mutex": [
        # RAII first: "lock_guard<std::mutex>" should hint MutexLock,
        # not report its template argument.
        (re.compile(r"\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\b"),
         "raw lock RAII (use MutexLock)"),
        (re.compile(r"\bstd\s*::\s*(recursive_|timed_|shared_)?mutex\b"),
         "raw std::mutex (use AnnotatedMutex)"),
    ],
    "obs-clock": [
        (re.compile(r"\bstd\s*::\s*chrono\b"), "std::chrono use"),
        (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
        (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
        (re.compile(r"\btimespec_get\b"), "timespec_get()"),
        (re.compile(r"(?<![\w:])clock\s*\("), "C clock()"),
        (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"),
         "C time()"),
    ],
}

TOKEN_HINTS = {
    "wall-clock": "wall time outside src/sim/clock.* breaks the "
                  "determinism boundary; read an injected sim::Clock",
    "rng": "randomness outside src/common/rng.hh breaks seed-stable "
           "reproducibility",
    "raw-mutex": "locks outside src/common/thread_safety.hh are "
                 "invisible to thread-safety analysis",
    "obs-clock": "src/obs/ never reads host time: timestamps are "
                 "arguments stamped off the run's sim::Clock, the "
                 "byte-identical-trace determinism boundary",
}

LEDGER_WRITE = re.compile(
    r"(?<!\w)(offered|delivered|dropped)(?!\w)\s*(?:[-+*/|&^]=|=(?!=))")

SUPPRESS = re.compile(r"lint:allow\(([^)]*)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_code(text):
    """Return text with comments and string/char literals blanked
    (newlines preserved), so token rules never fire on prose."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressions(raw_lines):
    """Per-line rule suppressions, parsed from the RAW text (they live
    in comments, which strip_code erases)."""
    sup = {}
    for idx, line in enumerate(raw_lines):
        m = SUPPRESS.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            sup[idx + 1] = rules
    return sup


def norm(path):
    return path.replace(os.sep, "/")


def is_allowed(path, rule):
    suffixes = ALLOWED.get(rule, ())
    p = norm(path)
    return any(p.endswith(s) for s in suffixes)


def in_scope(path, rule):
    """Restricted rules fire only under their path prefixes."""
    prefixes = RESTRICTED.get(rule)
    if prefixes is None:
        return True
    p = norm(path)
    return any(pre in p for pre in prefixes)


def lint_tokens(path, code_lines, sup, findings):
    for rule, patterns in TOKEN_RULES.items():
        if is_allowed(path, rule) or not in_scope(path, rule):
            continue
        for idx, line in enumerate(code_lines):
            lineno = idx + 1
            if rule in sup.get(lineno, ()):
                continue
            for pat, what in patterns:
                if pat.search(line):
                    findings.append(Finding(
                        path, lineno, rule,
                        "%s — %s" % (what, TOKEN_HINTS[rule])))
                    break  # one finding per line per rule


def lint_ledger(path, code_lines, sup, findings):
    writes = {}  # field -> first line
    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if "ledger-pairing" in sup.get(lineno, ()):
            continue
        for m in LEDGER_WRITE.finditer(line):
            writes.setdefault(m.group(1), lineno)
    if writes and len(writes) < 3:
        missing = sorted(set(("offered", "delivered", "dropped"))
                         - set(writes))
        first = min(writes.values())
        findings.append(Finding(
            path, first, "ledger-pairing",
            "writes %s but never %s — the invariant "
            "offered == delivered + dropped needs every mutation site "
            "to update the trio together"
            % (", ".join(sorted(writes)), ", ".join(missing))))


CONTRACT_PHRASE = "The UplinkArbiter contract"
VIRTUAL_DECL = re.compile(r"\bvirtual\b.*\b(acquire|release)\s*\(")


def lint_arbiter(path, raw_lines, code_lines, sup, findings):
    if os.path.basename(path) != "uplink.hh":
        return
    text = "".join(raw_lines)
    if CONTRACT_PHRASE not in text:
        findings.append(Finding(
            path, 1, "arbiter-contract",
            'missing the audited contract statement ("%s" section)'
            % CONTRACT_PHRASE))
    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if "arbiter-contract" in sup.get(lineno, ()):
            continue
        m = VIRTUAL_DECL.search(line)
        if not m or "~" in line:  # skip the virtual destructor
            continue
        # The nearest non-blank RAW line above must close or continue a
        # comment: the contract doc must sit adjacent to the decl.
        ok = False
        for j in range(idx - 1, -1, -1):
            prev = raw_lines[j].strip()
            if not prev:
                continue
            ok = (prev.endswith("*/") or prev.startswith("//")
                  or prev.startswith("*") or prev.startswith("/*"))
            break
        if not ok:
            findings.append(Finding(
                path, lineno, "arbiter-contract",
                "virtual %s() declaration has no adjacent contract "
                "comment" % m.group(1)))


def lint_file(path, findings):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        findings.append(Finding(path, 0, "io", str(e)))
        return
    raw_lines = text.splitlines(keepends=True)
    code_lines = strip_code(text).splitlines()
    sup = suppressions(raw_lines)
    lint_tokens(path, code_lines, sup, findings)
    lint_ledger(path, code_lines, sup, findings)
    lint_arbiter(path, raw_lines, code_lines, sup, findings)


def gather(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith(SOURCE_EXTS):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv):
    ap = argparse.ArgumentParser(
        description="incam repo invariant linter (see module docstring)")
    ap.add_argument("--root", default=".",
                    help="repo root; scans <root>/src when no FILEs given")
    ap.add_argument("files", nargs="*", metavar="FILE",
                    help="lint exactly these files instead of <root>/src")
    args = ap.parse_args(argv)

    files = args.files or gather(args.root)
    if not files:
        print("lint_invariants: nothing to lint under %s/src"
              % args.root, file=sys.stderr)
        return 2

    findings = []
    for path in files:
        lint_file(path, findings)

    for f in findings:
        print(f)
    if findings:
        print("lint_invariants: %d finding(s) in %d file(s) scanned"
              % (len(findings), len(files)), file=sys.stderr)
        return 1
    print("lint_invariants: clean (%d files)" % len(files),
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
