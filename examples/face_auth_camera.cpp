/**
 * @file
 * End-to-end battery-free face-authentication camera (case study 1).
 *
 * Builds the full Fig. 2 pipeline — motion detection, Viola-Jones face
 * detection, and the 400-8-1 authentication NN on the cycle-level
 * SNNAP accelerator — trains its models from scratch on synthetic
 * data, runs a simulated security video, and reports the stage funnel,
 * the energy ledger, and how far from an RFID reader the camera could
 * operate continuously. Also writes a contact sheet of annotated
 * frames (detections drawn as boxes) to /tmp/incam_fa_frame_*.pgm.
 *
 * Run: ./build/examples/face_auth_camera
 */

#include <cstdio>

#include "fa/auth.hh"
#include "fa/fa_pipeline.hh"
#include "image/image_io.hh"
#include "image/ops.hh"
#include "vj/train.hh"

using namespace incam;

int
main()
{
    std::printf("== battery-free face-authentication camera ==\n\n");

    // --- workload: a night of security footage at 1 FPS ----------------
    SecurityVideoConfig vc;
    vc.frames = 300;
    vc.visits = 7;
    vc.enrolled_fraction = 0.5;
    vc.seed = 2024;
    const SecurityVideo video(vc);
    std::printf("video: %d frames, %d with faces, %d with motion\n",
                video.frameCount(), video.faceFrames(),
                video.motionFrames());

    // --- train the authenticator ---------------------------------------
    FaceDatasetConfig dc;
    dc.identities = 24;
    dc.per_identity = 20;
    dc.size = 20;
    dc.hard = false;
    dc.framing_jitter = 0.15;
    dc.seed = 7;
    TrainConfig tc;
    tc.epochs = 120;
    std::printf("training 400-8-1 authentication net...\n");
    const AuthNet auth = trainAuthNet(FaceDataset::generate(dc),
                                      vc.enrolled_identity,
                                      MlpTopology{{400, 8, 1}}, tc);
    std::printf("  held-out classification error: %.2f%% (paper: 5.9%%)\n",
                100.0 * auth.test_error);

    // --- train the face-detection cascade ------------------------------
    std::printf("training Viola-Jones cascade...\n");
    Rng rng(31);
    std::vector<ImageU8> positives;
    for (int i = 0; i < 250; ++i) {
        positives.push_back(toU8(renderFace(
            identityParams(rng.below(40)), easyVariation(rng), 20)));
    }
    const SecurityVideo *vptr = &video;
    const NegativeSource negatives = [vptr](Rng &r) {
        if (r.chance(0.5)) {
            return toU8(renderDistractor(r.next(), 20));
        }
        const VideoFrame f = vptr->frame(static_cast<int>(r.below(40)));
        const int side = 20 + static_cast<int>(r.below(40));
        const int x = static_cast<int>(r.below(f.image.width() - side));
        const int y = static_cast<int>(r.below(f.image.height() - side));
        return resizeNearest(crop(f.image, Rect{x, y, side, side}), 20,
                             20);
    };
    CascadeTrainConfig cc;
    cc.max_features = 700;
    cc.max_stages = 6;
    cc.max_stumps_per_stage = 12;
    cc.negatives_per_stage = 400;
    cc.seed = 11;
    CascadeTrainReport report;
    const Cascade cascade =
        CascadeTrainer(cc).train(positives, negatives, &report);
    std::printf("  %d stages, %zu stumps, training TPR %.1f%%\n",
                report.stages, report.total_stumps,
                100.0 * report.final_tpr);

    // --- run the camera -------------------------------------------------
    FaConfig cfg;
    cfg.detector.min_neighbors = 1;
    cfg.detector.adaptive_step = true;
    cfg.detector.adaptive_frac = 0.1;
    FaCameraSim sim(cfg, &cascade, auth.net);
    std::printf("\nrunning the pipeline over %d frames...\n",
                video.frameCount());
    const FaRunResult res = sim.run(video);

    std::printf("\nstage funnel:\n");
    std::printf("  frames captured      %8llu\n",
                (unsigned long long)res.counts.frames);
    std::printf("  motion frames        %8llu\n",
                (unsigned long long)res.counts.motion_frames);
    std::printf("  VJ detections        %8llu\n",
                (unsigned long long)res.counts.vj_detections);
    std::printf("  NN inferences        %8llu\n",
                (unsigned long long)res.counts.nn_inferences);
    std::printf("  authenticated frames %8llu\n",
                (unsigned long long)res.counts.authenticated_frames);

    std::printf("\nenergy ledger (whole run):\n");
    std::printf("  sensor       %s\n", res.energy.sensor.toString().c_str());
    std::printf("  motion       %s\n", res.energy.motion.toString().c_str());
    std::printf("  face detect  %s\n",
                res.energy.facedetect.toString().c_str());
    std::printf("  crop/rescale %s\n", res.energy.crop.toString().c_str());
    std::printf("  NN (SNNAP)   %s\n", res.energy.nn.toString().c_str());
    std::printf("  TOTAL        %s (%s per frame)\n",
                res.energy.total().toString().c_str(),
                res.perFrame().toString().c_str());

    std::printf("\nquality: %llu/%llu enrolled visits authenticated "
                "(visit miss %.1f%%), %llu false visit accepts\n",
                (unsigned long long)res.caught_visits,
                (unsigned long long)res.enrolled_visits,
                100.0 * res.visitMissRate(),
                (unsigned long long)res.false_visits);

    const Power p1fps = res.averagePower(FrameRate::fps(1.0));
    std::printf("\naverage power at 1 FPS: %s (sub-mW: %s)\n",
                p1fps.toString().c_str(),
                p1fps.mw() < 1.0 ? "yes" : "NO");
    const RfHarvesterConfig rf;
    std::printf("continuous-operation range from a 4 W reader: %.1f m\n",
                harvestingRange(rf, Power::watts(res.perFrame().j())));

    // --- contact sheet ---------------------------------------------------
    int written = 0;
    DetectorParams dp = cfg.detector;
    const Detector detector(cascade, dp);
    for (int f = 0; f < video.frameCount() && written < 4; ++f) {
        if (!video.truth(f).has_face) {
            continue;
        }
        VideoFrame frame = video.frame(f);
        for (const auto &d : detector.detect(frame.image)) {
            drawRect(frame.image, d.box, 255);
        }
        char path[64];
        std::snprintf(path, sizeof(path), "/tmp/incam_fa_frame_%d.pgm",
                      written);
        writePgm(frame.image, path);
        std::printf("wrote %s\n", path);
        ++written;
    }
    return 0;
}
