/**
 * @file
 * Offload explorer: how the computation-communication balance moves.
 *
 * The paper's thesis is that where a pipeline should be cut depends on
 * the link and the power budget. This example sweeps both knobs:
 *
 *  1. VR rig: uplink bandwidth from 5 to 400 Gb/s — watch the optimal
 *     cut move from "everything in camera" to "stream raw sensor data"
 *     (Section IV-C's observation).
 *  2. FA camera: reader distance (harvested power) and radio cost —
 *     watch local processing beat offload by orders of magnitude at
 *     every realistic operating point.
 *
 * Run: ./build/examples/offload_explorer
 */

#include <cstdio>

#include "core/optimizer.hh"
#include "hw/rf_harvest.hh"
#include "hw/sensor.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

namespace {

void
exploreVr()
{
    std::printf("-- VR rig: optimal design vs uplink bandwidth --\n");
    std::printf("%-10s %-14s %-44s\n", "uplink", "raw FPS",
                "cheapest real-time configuration");
    for (double gbps : {5.0, 15.0, 25.0, 48.0, 100.0, 400.0}) {
        VrPipelineModel model(defaultVrGeometry(),
                              Bandwidth::gigabitsPerSec(gbps));
        std::string best = "(none achieves 30 FPS)";
        for (const auto &row : model.figure10()) {
            if (row.realtime) {
                best = row.name;
                break; // rows ordered by in-camera depth
            }
        }
        std::printf("%-10s %-14.1f %-44s\n",
                    (std::to_string(static_cast<int>(gbps)) + " Gb/s")
                        .c_str(),
                    model.commFps(VrBlock::Sensor), best.c_str());
    }
    std::printf("below ~48 Gb/s the camera must compute; above it, raw "
                "streaming wins.\n\n");
}

void
exploreFa()
{
    std::printf("-- FA camera: local processing vs offload, by reader "
                "distance --\n");

    // Representative measured costs (see bench_fa_pipeline for the
    // full simulation): filtered pipeline ~1.1 uJ/frame in camera.
    const Energy local_per_frame = Energy::microjoules(1.13);
    const SensorModel sensor;
    const NetworkLink radio = backscatterUplink();
    const Energy offload_per_frame =
        sensor.captureEnergy(160, 120) +
        radio.transferEnergy(sensor.frameBytes(160, 120));

    const RfHarvesterConfig rf;
    std::printf("%-10s %-12s %-18s %-18s\n", "distance", "harvested",
                "local FPS", "offload FPS");
    for (double d : {1.0, 2.0, 3.0, 5.0, 8.0}) {
        const Power budget = harvestedPower(rf, d);
        std::printf("%-10s %-12s %-18.2f %-18.3f\n",
                    (std::to_string(d).substr(0, 3) + " m").c_str(),
                    budget.toString().c_str(),
                    budget.w() / local_per_frame.j(),
                    budget.w() / offload_per_frame.j());
    }
    std::printf("local processing sustains continuous operation ~%.0fx "
                "further up the energy budget than offloading frames.\n",
                offload_per_frame.j() / local_per_frame.j());
}

} // namespace

int
main()
{
    std::printf("== offload explorer: two cameras, two currencies ==\n\n");
    exploreVr();
    exploreFa();
    std::printf("\nsame framework, opposite answers: the VR rig is "
                "bandwidth-starved (compute in camera), while the FA\n"
                "camera is energy-starved (filter early, never ship "
                "pixels). That is the paper's tradeoff space.\n");
    return 0;
}
