/**
 * @file
 * Bilateral-space stereo on a synthetic scene.
 *
 * Renders a textured layered stereo pair with exact ground truth, runs
 * plain winner-take-all block matching and then BSSA refinement, and
 * reports how much the bilateral-space solver improves the depth map —
 * plus the Fig. 7 tradeoff in miniature (quality vs grid cell size).
 * Writes /tmp/incam_stereo_{left,wta,refined,truth}.pgm for visual
 * inspection.
 *
 * Run: ./build/examples/stereo_depth_demo
 */

#include <cstdio>

#include "bilateral/stereo.hh"
#include "image/image_io.hh"
#include "image/metrics.hh"
#include "image/ops.hh"
#include "workload/stereo_scene.hh"

using namespace incam;

namespace {

double
meanAbsError(const ImageF &got, const ImageF &want)
{
    double acc = 0.0;
    int n = 0;
    for (int y = 4; y < got.height() - 4; ++y) {
        for (int x = 20; x < got.width() - 4; ++x) {
            acc += std::fabs(got.at(x, y) - want.at(x, y));
            ++n;
        }
    }
    return acc / n;
}

void
writeDepth(const ImageF &disparity, double max_d, const char *path)
{
    ImageF vis = disparity;
    for (float &v : vis) {
        v = static_cast<float>(v / max_d);
    }
    writePgm(toU8(vis), path);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main()
{
    std::printf("== bilateral-space stereo (BSSA) demo ==\n\n");

    StereoSceneConfig sc;
    sc.width = 320;
    sc.height = 240;
    sc.layers = 6;
    sc.max_disparity = 18;
    sc.noise = 0.015;
    sc.seed = 123;
    const StereoPair scene = makeStereoPair(sc);
    std::printf("scene: %dx%d, %d layers, disparities up to %.0f px\n",
                sc.width, sc.height, sc.layers, sc.max_disparity);

    BssaConfig cfg;
    cfg.max_disparity = 20;
    cfg.cell_spatial = 4.0;
    cfg.range_bins = 16;
    cfg.solver_iterations = 12;
    const BssaStereo stereo(cfg);
    const BssaResult res = stereo.compute(scene.left, scene.right);

    const double wta_err = meanAbsError(res.raw_disparity,
                                        scene.disparity);
    const double refined_err = meanAbsError(res.disparity,
                                            scene.disparity);
    std::printf("\nwinner-take-all error: %.2f px\n", wta_err);
    std::printf("BSSA-refined error:    %.2f px  (%.0f%% better)\n",
                refined_err, 100.0 * (1.0 - refined_err / wta_err));
    std::printf("grid: %zu vertices, %llu solver vertex-visits\n",
                res.grid_vertices,
                (unsigned long long)res.ops.filterVisits());

    writePgm(toU8(scene.left), "/tmp/incam_stereo_left.pgm");
    writeDepth(res.raw_disparity, cfg.max_disparity,
               "/tmp/incam_stereo_wta.pgm");
    writeDepth(res.disparity, cfg.max_disparity,
               "/tmp/incam_stereo_refined.pgm");
    writeDepth(scene.disparity, cfg.max_disparity,
               "/tmp/incam_stereo_truth.pgm");

    // Fig. 7 in miniature: cell size vs quality.
    std::printf("\ngrid-size tradeoff (Fig. 7 shape):\n");
    std::printf("  %-10s %-10s %-10s\n", "px/vertex", "vertices",
                "err (px)");
    for (double cell : {4.0, 8.0, 16.0, 32.0}) {
        BssaConfig c = cfg;
        c.cell_spatial = cell;
        c.range_bins = std::max(2, static_cast<int>(16 * 4 / cell));
        const BssaResult r = BssaStereo(c).compute(scene.left,
                                                   scene.right);
        std::printf("  %-10.0f %-10zu %-10.2f\n", cell, r.grid_vertices,
                    meanAbsError(r.disparity, scene.disparity));
    }
    std::printf("\ncoarser grids are cheaper but blur depth edges — "
                "the computation/quality knob of the paper's Fig. 7.\n");
    return 0;
}
