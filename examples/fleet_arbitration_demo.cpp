/**
 * @file
 * Fleet arbitration demo: both case studies under one link budget.
 *
 * Builds a small heterogeneous fleet — two face-auth cameras (one
 * uploading face crops, one streaming raw frames, both capped at a
 * 30 FPS sensor) and a saturated VR rig camera — sharing one 25 GbE
 * trunk, predicts each camera's contended share with the analytical
 * fleet model, runs the fleet for real through the SharedLink
 * arbiter, and prints model-vs-measured side by side. Then asks the
 * FleetOptimizer what per-camera cuts it would pick for the same
 * fleet.
 *
 *   cmake --build build --target example_fleet_arbitration_demo
 *   ./build/example_fleet_arbitration_demo
 */

#include <cstdio>

#include "core/fleet_model.hh"
#include "core/network.hh"
#include "fa/scenario.hh"
#include "fleet/fleet.hh"
#include "vr/scenario.hh"

using namespace incam;

int
main()
{
    const Pipeline fa = buildFaPipeline(nominalFaMeasurements());
    const Pipeline vr = buildVrPipeline(VrPipelineModel{});
    const NetworkLink link = twentyFiveGbE();

    std::printf("fleet: 2 FA cameras + 1 VR camera sharing %s "
                "(%.2f GB/s goodput), fair arbitration\n\n",
                link.name.c_str(),
                link.goodput().bytesPerSecond() / 1e9);

    FleetOptions options;
    options.gating = GatingMode::None; // throughput semantics
    options.time_scale = 0.25;         // 4x compressed wall time
    CameraFleet fleet(link, options);

    FleetCamera crops("fa-crops", fa,
                      PipelineConfig::full(fa, Impl::Asic, 2));
    crops.frames = 60;
    crops.source_fps = 30.0; // a security camera's sensor rate
    fleet.addCamera(std::move(crops));

    FleetCamera raw("fa-raw", fa,
                    PipelineConfig::full(fa, Impl::Asic, 0));
    raw.frames = 60;
    raw.source_fps = 30.0;
    fleet.addCamera(std::move(raw));

    // The VR rig saturates: ~100 MB stitched slices as fast as its
    // compute and the leftover trunk capacity allow.
    FleetCamera rig("vr-rig", vr,
                    PipelineConfig::full(vr, Impl::Fpga, 4));
    rig.frames = 60;
    fleet.addCamera(std::move(rig));

    const FleetModelReport model =
        fleetReport(fleet.modelCameras(), link, options.policy);
    const FleetRunReport run = fleet.run();

    std::printf("%-10s %11s %11s %14s %11s\n", "camera", "model FPS",
                "meas FPS", "share MB/s", "link-bound");
    for (size_t i = 0; i < run.cameras.size(); ++i) {
        const FleetShare &m = model.cameras[i];
        const FleetCameraReport &r = run.cameras[i];
        std::printf("%-10s %11.2f %11.2f %14.2f %11s\n",
                    r.name.c_str(), m.fps, r.runtime.model_fps,
                    m.allocated_bps / 1e6, m.link_bound ? "yes" : "no");
    }
    std::printf("\naggregate: model %.2f FPS, measured %.2f FPS; "
                "link utilization %.0f%%\n",
                model.aggregate_fps, run.aggregate_model_fps,
                100.0 * model.utilization);

    // What would the optimizer do with this fleet?
    FleetOptimizerGoal goal;
    goal.kind = FleetOptimizerGoal::Kind::MaxAggregateFps;
    const FleetOptimizer optimizer(fleet.modelCameras(), link,
                                   options.policy);
    const FleetChoice choice = optimizer.best(goal);
    std::printf("\noptimizer (max aggregate FPS -> %.2f):\n",
                choice.report.aggregate_fps);
    for (size_t i = 0; i < choice.configs.size(); ++i) {
        const Pipeline &p = i < 2 ? fa : vr;
        std::printf("  %-10s %s\n", run.cameras[i].name.c_str(),
                    choice.configs[i].toString(p).c_str());
    }
    return 0;
}
