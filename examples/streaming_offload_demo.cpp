/**
 * @file
 * The streaming runtime executing offload cuts over real frame traffic.
 *
 * Part 1 sweeps every offload cut of the face-authentication pipeline
 * over Wi-Fi, running each configuration through the streaming runtime
 * and printing measured FPS / J-per-frame next to the analytical
 * predictions — the paper's tradeoff table, but *executed* rather than
 * evaluated.
 *
 * Part 2 swaps the modeled traffic for a simulated night of security
 * footage: the motion block runs the real frame-difference detector
 * (src/motion) on the pixels, so the radio ships only the frames that
 * actually contain motion, and the report shows how the measured pass
 * rate and energy track the model's declared 30% duty.
 *
 * Run: ./build/example_streaming_offload_demo
 */

#include <cstdio>
#include <memory>

#include "core/network.hh"
#include "core/pipeline.hh"
#include "fa/scenario.hh"
#include "runtime/executor.hh"
#include "runtime/runtime.hh"
#include "workload/video.hh"

using namespace incam;

int
main()
{
    std::printf("== streaming runtime: offload cuts over frame traffic ==\n\n");

    const Pipeline pipe = buildFaPipeline(nominalFaMeasurements());
    const NetworkLink link = wifiUplink();
    const PipelineEvaluator eval(pipe, link);

    // --- part 1: every cut, modeled traffic -------------------------
    std::printf("part 1: cut sweep, modeled traffic (%s uplink)\n\n",
                link.name.c_str());
    std::printf("  %-4s %12s %12s %14s %14s\n", "cut", "model FPS",
                "meas FPS", "model J/frame", "meas J/frame");
    for (int cut = 0; cut <= pipe.blockCount(); ++cut) {
        const PipelineConfig cfg =
            PipelineConfig::full(pipe, Impl::Asic, cut);
        const double fps_pred = eval.evaluateThroughput(cfg).total_fps;
        const double jpf_pred = eval.evaluateEnergy(cfg).total().j();

        RuntimeOptions opts;
        opts.frames = 200;
        opts.gating = GatingMode::None;
        StreamingPipeline fps_run(pipe, cfg, link, opts);
        const double fps_meas = fps_run.run().model_fps;

        opts.gating = GatingMode::Model;
        opts.pace_stages = false;
        opts.pace_link = false;
        StreamingPipeline e_run(pipe, cfg, link, opts);
        const double jpf_meas = e_run.run().joules_per_frame.j();

        std::printf("  %-4d %12.1f %12.1f %14.3e %14.3e\n", cut,
                    fps_pred, fps_meas, jpf_pred, jpf_meas);
    }

    // --- part 2: real pixels through the motion gate ----------------
    std::printf("\npart 2: real traffic, cut after MotionDetect\n\n");
    SecurityVideoConfig vc;
    vc.frames = 240;
    const SecurityVideo video(vc);
    std::printf("  video: %d frames, %d with actual motion\n",
                video.frameCount(), video.motionFrames());

    const PipelineConfig cfg = PipelineConfig::full(pipe, Impl::Asic, 1);
    RuntimeOptions opts;
    opts.frames = video.frameCount();
    opts.gating = GatingMode::Executor; // the pixels decide
    StreamingPipeline sp(pipe, cfg, link, opts);
    sp.setExecutor(0, std::make_unique<MotionGateExecutor>());
    sp.setFrameFill([&video](Frame &f) {
        f.image = video.frame(static_cast<int>(f.id)).image;
    });
    const RuntimeReport rep = sp.run();

    const StageReport &motion = rep.stages.front();
    std::printf("  motion gate passed %lld / %lld frames (%.0f%%; "
                "model says %.0f%%)\n",
                static_cast<long long>(motion.frames_out),
                static_cast<long long>(motion.frames_in),
                100.0 * static_cast<double>(motion.frames_out) /
                    static_cast<double>(motion.frames_in),
                100.0 * pipe.block(0).passFraction());
    std::printf("  uplink shipped %.0f kB at %.0f%% utilization\n",
                rep.link.bytes_sent.kb(), 100.0 * rep.link.utilization);
    std::printf("  measured %.1f FPS, %.3e J/frame "
                "(compute %.3e + radio %.3e)\n",
                rep.model_fps, rep.joules_per_frame.j(),
                rep.compute_energy.j() /
                    static_cast<double>(rep.source_frames),
                rep.comm_energy.j() /
                    static_cast<double>(rep.source_frames));
    std::printf("\ndone.\n");
    return 0;
}
