/**
 * @file
 * One frame through the 3D-360 VR rig (case study 2).
 *
 * Synthesizes a 16-camera ring, runs the full B1..B4 pipeline at proxy
 * resolution — demosaic, pairwise rectification, bilateral-space
 * stereo, stereo-panorama stitching — and writes the outputs
 * (/tmp/incam_vr_pano_{left,right}.ppm, /tmp/incam_vr_depth.pgm). Then
 * prints the full-scale cost model's verdict for the same pipeline:
 * the Fig. 10 computation/communication table.
 *
 * Run: ./build/examples/vr_rig_stream
 */

#include <cstdio>

#include "image/image_io.hh"
#include "image/metrics.hh"
#include "image/ops.hh"
#include "vr/blocks.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

namespace {

ImageU8
toU8Rgb(const ImageF &img)
{
    return toU8(img);
}

} // namespace

int
main()
{
    std::printf("== 16-camera 3D-360 VR rig, one frame ==\n\n");

    RigConfig rc;
    rc.cameras = 16;
    rc.cam_width = 160;
    rc.cam_height = 120;
    rc.overlap = 0.5;
    rc.layers = 6;
    rc.max_disparity = 12;
    rc.seed = 42;
    const CameraRig rig(rc);
    std::printf("rig: %d cameras, %d px stride, %d-column panorama\n",
                rig.cameras(), rig.step(), rig.worldColumns());

    BssaConfig bssa;
    bssa.max_disparity = 14;
    bssa.solver_iterations = 10;
    const VrPipeline pipeline(rig, bssa);

    std::printf("processing B1 (demosaic) .. B4 (stitch) at proxy "
                "resolution...\n");
    const VrFrameBundle bundle = pipeline.processFrame();

    // Alignment sanity: the estimator recovered the camera stride.
    int offset_err = 0;
    for (const auto &pair : bundle.pairs) {
        offset_err = std::max(offset_err,
                              std::abs(pair.offset - rig.step()));
    }
    std::printf("B2 alignment: worst stride error %d px\n", offset_err);

    // Depth sanity against the rig's ground truth.
    double mae = 0.0;
    int n = 0;
    for (size_t k = 0; k < bundle.depth.size(); ++k) {
        const ImageF truth = rig.pairDisparity(static_cast<int>(k));
        const ImageF &got = bundle.depth[k].disparity;
        const int w = std::min(truth.width(), got.width());
        for (int y = 4; y < got.height() - 4; ++y) {
            for (int x = 8; x < w - 4; ++x) {
                mae += std::fabs(got.at(x, y) - truth.at(x, y));
                ++n;
            }
        }
    }
    std::printf("B3 depth: mean abs disparity error %.2f px over %d "
                "pairs\n",
                mae / n, static_cast<int>(bundle.depth.size()));

    writePpm(toU8Rgb(bundle.pano_left), "/tmp/incam_vr_pano_left.ppm");
    writePpm(toU8Rgb(bundle.pano_right), "/tmp/incam_vr_pano_right.ppm");
    // Depth visualization: first pair, normalized.
    ImageF depth_vis = bundle.depth[0].disparity;
    for (float &v : depth_vis) {
        v /= static_cast<float>(bssa.max_disparity);
    }
    writePgm(toU8(depth_vis), "/tmp/incam_vr_depth.pgm");
    std::printf("wrote /tmp/incam_vr_pano_left.ppm, "
                "/tmp/incam_vr_pano_right.ppm, /tmp/incam_vr_depth.pgm\n");

    // --- the full-scale verdict (Fig. 10) ------------------------------
    std::printf("\nfull-scale cost model (16x 4K cameras, 25 GbE):\n");
    const VrPipelineModel model;
    for (const auto &row : model.figure10()) {
        std::printf("  %-22s total %6.2f FPS %s\n", row.name.c_str(),
                    row.total_fps, row.realtime ? "<- real-time" : "");
    }
    std::printf("\nonly the fully in-camera FPGA pipeline sustains the "
                "30 FPS target (the paper's conclusion).\n");
    return 0;
}
