/**
 * @file
 * Quickstart: model a camera application as an in-camera processing
 * pipeline and let the optimizer decide what runs where.
 *
 * The scenario is the paper's Fig. 1 in miniature: a sensor produces
 * frames, an optional filter discards boring ones, an optional reducer
 * shrinks the data, and a mandatory analysis block produces a verdict.
 * Each block offers one or more implementations; the pipeline can be
 * cut anywhere for cloud offload. We evaluate a few configurations by
 * hand, then ask the optimizer for the best energy and best throughput
 * designs under a Wi-Fi-class uplink.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/optimizer.hh"

using namespace incam;

int
main()
{
    // --- 1. Describe the pipeline -------------------------------------
    // A QVGA monochrome sensor: 320 x 240 x 1 byte per frame.
    Pipeline pipe("quickstart-camera", DataSize::kilobytes(76.8));

    // Optional activity filter: passes 20% of frames onward.
    Block filter("ActivityFilter", /*optional=*/true,
                 DataSize::kilobytes(76.8));
    filter.setPassFraction(0.20);
    filter.addImpl(Impl::Asic,
                   {Time::microseconds(300), Energy::nanojoules(40)});
    filter.addImpl(Impl::Mcu,
                   {Time::milliseconds(4), Energy::microjoules(12)});
    pipe.add(filter);

    // Optional feature extractor: shrinks a frame to a 2 KB descriptor.
    Block reduce("FeatureExtract", /*optional=*/true,
                 DataSize::kilobytes(2));
    reduce.addImpl(Impl::Asic,
                   {Time::milliseconds(1), Energy::microjoules(0.8)});
    reduce.addImpl(Impl::Mcu,
                   {Time::milliseconds(40), Energy::microjoules(120)});
    pipe.add(reduce);

    // Core classifier: 64-byte verdict.
    Block classify("Classify", /*optional=*/false, DataSize::bytes(64));
    classify.addImpl(Impl::Asic,
                     {Time::microseconds(50), Energy::microjoules(0.2)});
    classify.addImpl(Impl::Mcu,
                     {Time::milliseconds(10), Energy::microjoules(30)});
    pipe.add(classify);

    // --- 2. Evaluate configurations by hand ---------------------------
    const PipelineEvaluator eval(pipe, wifiUplink());

    PipelineConfig stream_raw;
    stream_raw.include = {true, true, true};
    stream_raw.impl = {Impl::Asic, Impl::Asic, Impl::Asic};
    stream_raw.cut = 0; // everything offloaded

    PipelineConfig all_in_camera = stream_raw;
    all_in_camera.cut = pipe.blockCount();

    for (const auto &[name, cfg] :
         {std::pair<const char *, const PipelineConfig &>{"stream raw",
                                                          stream_raw},
          {"all in camera", all_in_camera}}) {
        const EnergyReport e = eval.evaluateEnergy(cfg);
        const ThroughputReport t = eval.evaluateThroughput(cfg);
        std::printf("%-14s energy/frame = %-10s  fps = %.1f "
                    "(compute %.1f, link %.1f)\n",
                    name, e.total().toString().c_str(), t.total_fps,
                    t.compute_fps, t.comm_fps);
    }

    // --- 3. Ask the optimizer -----------------------------------------
    const PipelineOptimizer opt(pipe, wifiUplink());

    OptimizerGoal energy_goal;
    energy_goal.kind = OptimizerGoal::Kind::MinEnergy;
    const ConfigResult best_energy = opt.best(energy_goal);
    std::printf("\nmin-energy design:  %s\n  -> %s per frame, %.1f FPS\n",
                best_energy.config.toString(pipe).c_str(),
                best_energy.energy.total().toString().c_str(),
                best_energy.throughput.total_fps);

    OptimizerGoal fps_goal;
    fps_goal.kind = OptimizerGoal::Kind::MaxThroughput;
    const ConfigResult best_fps = opt.best(fps_goal);
    std::printf("max-throughput design: %s\n  -> %.1f FPS at %s per "
                "frame\n",
                best_fps.config.toString(pipe).c_str(),
                best_fps.throughput.total_fps,
                best_fps.energy.total().toString().c_str());

    std::printf("\nexplored %zu configurations in total\n",
                opt.configurationCount());
    return 0;
}
