/**
 * @file
 * A face-authentication backscatter camera riding a bursty lossy
 * uplink: what the loss ledger looks like under "drop on loss" vs
 * "retry with backoff", and how the measured numbers line up with the
 * closed-form delivery model.
 *
 * The camera is the paper's FA pipeline on the backscatter uplink —
 * the deployment whose radio is nearly free per bit but whose channel
 * is the flakiest. The channel is a seeded Gilbert-Elliott burst-loss
 * schedule (5% loss in the good state, 50% in the bad), so the same
 * run is bit-reproducible: every retry, every dropped frame, every
 * extra microjoule is the deterministic consequence of the plan.
 *
 * Run: ./build/example_lossy_uplink_demo
 */

#include <cstdio>

#include "core/network.hh"
#include "core/optimizer.hh"
#include "core/pipeline.hh"
#include "fa/scenario.hh"
#include "fault/fault.hh"
#include "fault/loss_model.hh"
#include "runtime/runtime.hh"

using namespace incam;

namespace {

void
printLedger(const char *title, const LossLedger &lg)
{
    std::printf("  %s\n", title);
    std::printf("    offered %lld = delivered %lld (%lld remote, "
                "%lld local) + dropped %lld\n",
                static_cast<long long>(lg.offered),
                static_cast<long long>(lg.delivered),
                static_cast<long long>(lg.delivered_remote),
                static_cast<long long>(lg.delivered_local),
                static_cast<long long>(lg.dropped));
    std::printf("    drops by cause: gated %lld, link %lld, "
                "source %lld, fault %lld, shutdown %lld\n",
                static_cast<long long>(lg.dropped_gated),
                static_cast<long long>(lg.dropped_link),
                static_cast<long long>(lg.dropped_source),
                static_cast<long long>(lg.dropped_fault),
                static_cast<long long>(lg.dropped_shutdown));
    std::printf("    uplink: %lld attempts, %lld lost, %lld frames "
                "retried, %.1f kB retry bytes, %.1f uJ retry energy\n",
                static_cast<long long>(lg.tx_attempts),
                static_cast<long long>(lg.tx_losses),
                static_cast<long long>(lg.retried_frames),
                lg.retry_bytes.b() / 1e3, lg.retry_energy.uj());
    std::printf("    %.2f s of timeout/backoff dead time, goodput "
                "after loss %.1f bit/s, invariant %s\n",
                lg.backoff_seconds, lg.goodput_after_loss_bps,
                lg.consistent() ? "holds" : "VIOLATED");
}

} // namespace

int
main()
{
    std::printf("== lossy uplink: an FA backscatter camera under "
                "burst loss ==\n\n");

    const Pipeline pipe = buildFaPipeline(nominalFaMeasurements());
    const NetworkLink link = backscatterUplink();

    // The energy-optimal cut under this radio, from the paper's
    // exhaustive optimizer.
    OptimizerGoal goal;
    goal.kind = OptimizerGoal::Kind::MinEnergy;
    const PipelineOptimizer opt(pipe, link);
    const PipelineConfig cfg = opt.best(goal).config;
    std::printf("camera: %s on %s, config %s\n\n", pipe.name().c_str(),
                link.name.c_str(), cfg.toString(pipe).c_str());

    // A bursty channel: Gilbert-Elliott loss, 5% good / 50% bad.
    GilbertElliottParams ge;
    ge.p_good_to_bad = 0.2;
    ge.p_bad_to_good = 0.3;
    ge.step = Time::seconds(2.0);
    ge.duration = Time::seconds(150.0);
    ge.seed = 11;
    FaultPlan plan;
    plan.seed = 7;
    plan.loss_schedule = FaultPlan::gilbertElliottLoss(0.05, 0.5, ge);
    const FaultInjector injector(plan);

    const double fps = 4.0;
    const int64_t frames =
        static_cast<int64_t>(ge.duration.sec() * fps);

    auto run = [&](int max_retries) {
        RuntimeOptions opts;
        opts.frames = frames;
        opts.gating = GatingMode::None; // every frame faces the link
        opts.pace_stages = false;
        opts.pace_link = false;
        opts.trace_fps = fps;
        opts.delivery.max_retries = max_retries;
        opts.delivery.ack_timeout = 0.02;
        opts.delivery.backoff_base = 0.05;
        opts.delivery.backoff_jitter = 0.3;
        StreamingPipeline sp(pipe, cfg, link, opts);
        sp.setFaultInjector(&injector);
        return sp.run();
    };

    // Policy A: no retries — a lost attempt sheds the frame.
    const RuntimeReport drop = run(0);
    printLedger("policy: drop on loss (no retries)", drop.ledger);

    // Policy B: up to 3 retries with timeout + exponential backoff.
    const RuntimeReport retry = run(3);
    std::printf("\n");
    printLedger("policy: retry x3, 20 ms ack timeout, 50 ms backoff",
                retry.ledger);

    // The analytical mirror: walk the same plan frame by frame.
    DeliveryModelPolicy pol;
    pol.max_retries = 3;
    pol.ack_timeout = 0.02;
    pol.backoff_base = 0.05;
    const DeliveryModel m =
        expectedDeliveryOverPlan(plan, fps, frames, pol);
    std::printf("\nloss-aware model for the retry policy: "
                "P(delivered) %.4f (measured %.4f), E[attempts] %.3f "
                "(measured %.3f)\n",
                m.p_delivered,
                static_cast<double>(retry.ledger.delivered) /
                    static_cast<double>(retry.ledger.offered),
                m.expected_attempts,
                static_cast<double>(retry.ledger.tx_attempts) /
                    static_cast<double>(retry.ledger.offered));

    const long long saved = static_cast<long long>(
        retry.ledger.delivered - drop.ledger.delivered);
    std::printf("\nretries recovered %lld frames the drop policy "
                "shed, at %.1f uJ of extra radio energy (%.1f nJ per "
                "recovered frame)\n",
                saved, retry.ledger.retry_energy.uj(),
                saved > 0
                    ? retry.ledger.retry_energy.nj() /
                          static_cast<double>(saved)
                    : 0.0);
    return 0;
}
