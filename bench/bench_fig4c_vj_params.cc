/**
 * @file
 * E4 — Fig. 4c: "Impact of VJ parameters on relative accuracy".
 *
 * Trains one detection cascade, then sweeps the three scan parameters
 * of the figure — scale factor, static step size (pixels), adaptive
 * step size (fraction of window) — evaluating F1 / precision / recall
 * over a batch of synthetic scenes with known face boxes. As in the
 * figure, each metric is reported *relative* to its best value within
 * the sweep. Shapes to reproduce: accuracy falls as the scale factor
 * and static step grow; the adaptive step tolerates small fractions
 * and then degrades.
 */

#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "image/ops.hh"
#include "vj/score.hh"
#include "vj/train.hh"
#include "workload/facegen.hh"

using namespace incam;

namespace {

/** A test scene: textured background plus one known face. */
struct Scene
{
    ImageU8 image;
    Rect face;
};

std::vector<Scene>
makeScenes(int count, uint64_t seed)
{
    std::vector<Scene> scenes;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
        ImageF img(160, 120, 1);
        for (int y = 0; y < 120; ++y) {
            for (int x = 0; x < 160; ++x) {
                img.at(x, y) = 0.35f + 0.15f * ((x / 20 + y / 20) % 2) +
                               static_cast<float>(rng.uniform(-.02, .02));
            }
        }
        const int side = 32 + static_cast<int>(rng.below(48));
        Scene s;
        s.face = Rect{static_cast<int>(rng.below(160 - side)),
                      static_cast<int>(rng.below(120 - side)), side, side};
        renderFaceInto(img, identityParams(100 + rng.below(50)),
                       easyVariation(rng), s.face);
        s.image = toU8(img);
        scenes.push_back(std::move(s));
    }
    return scenes;
}

Confusion
scoreParams(const Cascade &cascade, const DetectorParams &params,
            const std::vector<Scene> &scenes)
{
    const Detector detector(cascade, params);
    DetectionScorer scorer(0.35);
    for (const Scene &s : scenes) {
        scorer.add(detector.detect(s.image), {s.face});
    }
    return scorer.totals();
}

struct SweepPoint
{
    std::string label;
    Confusion score;
    uint64_t windows;
};

void
printRelative(const std::string &title,
              const std::vector<SweepPoint> &points)
{
    double best_f1 = 1e-9, best_p = 1e-9, best_r = 1e-9;
    for (const auto &pt : points) {
        best_f1 = std::max(best_f1, pt.score.f1());
        best_p = std::max(best_p, pt.score.precision());
        best_r = std::max(best_r, pt.score.recall());
    }
    TableWriter table({"parameter", "rel F1 %", "rel precision %",
                       "rel recall %", "abs F1", "windows/frame"});
    for (const auto &pt : points) {
        table.addRow(
            {pt.label,
             TableWriter::num(100.0 * pt.score.f1() / best_f1, 1),
             TableWriter::num(100.0 * pt.score.precision() / best_p, 1),
             TableWriter::num(100.0 * pt.score.recall() / best_r, 1),
             TableWriter::num(pt.score.f1(), 3),
             TableWriter::num(static_cast<long long>(pt.windows))});
    }
    table.print(title);
}

} // namespace

int
main()
{
    banner("E4 (Fig. 4c)", "VJ scan-parameter sensitivity");
    paperSays("relative accuracy falls with scale factor and static "
              "step; adaptive step tolerates small fractions");

    // Train the cascade (the figure holds the model fixed).
    Rng rng(31);
    std::vector<ImageU8> positives;
    for (int i = 0; i < 300; ++i) {
        positives.push_back(toU8(renderFace(
            identityParams(rng.below(50)), easyVariation(rng), 20)));
    }
    const NegativeSource negatives = [](Rng &r) {
        return toU8(renderDistractor(r.next(), 20));
    };
    CascadeTrainConfig tc;
    tc.max_features = 700;
    tc.max_stages = 6;
    tc.max_stumps_per_stage = 12;
    tc.negatives_per_stage = 400;
    tc.seed = 11;
    CascadeTrainReport report;
    const Cascade cascade =
        CascadeTrainer(tc).train(positives, negatives, &report);
    std::printf("cascade: %d stages, %zu stumps, train TPR %.3f\n",
                report.stages, report.total_stumps, report.final_tpr);

    const auto scenes = makeScenes(24, 5);

    // Grouping at min_neighbors = 2, as in the classic detector: dense
    // scans then self-filter (true faces produce many raw hits, noise
    // rarely produces two overlapping ones).
    DetectorParams base;
    base.scale_factor = 1.25;
    base.adaptive_step = true;
    base.adaptive_frac = 0.05;
    base.min_neighbors = 2;

    // --- sweep 1: scale factor ---
    std::vector<SweepPoint> scale_pts;
    for (double sf : {1.25, 1.50, 1.75, 2.00}) {
        DetectorParams p = base;
        p.scale_factor = sf;
        const Detector d(cascade, p);
        scale_pts.push_back({TableWriter::num(sf, 2),
                             scoreParams(cascade, p, scenes),
                             d.windowCount(160, 120)});
    }
    printRelative("scale factor sweep (adaptive step 0.05)", scale_pts);

    // --- sweep 2: static step size (pixels) ---
    std::vector<SweepPoint> static_pts;
    for (int step : {4, 8, 12, 16}) {
        DetectorParams p = base;
        p.adaptive_step = false;
        p.static_step = step;
        const Detector d(cascade, p);
        static_pts.push_back({TableWriter::num(step) + " px",
                              scoreParams(cascade, p, scenes),
                              d.windowCount(160, 120)});
    }
    printRelative("static step-size sweep (scale 1.25)", static_pts);

    // --- sweep 3: adaptive step size (fraction of window) ---
    std::vector<SweepPoint> adaptive_pts;
    for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4}) {
        DetectorParams p = base;
        p.adaptive_step = true;
        p.adaptive_frac = frac;
        const Detector d(cascade, p);
        adaptive_pts.push_back({TableWriter::num(frac, 1),
                                scoreParams(cascade, p, scenes),
                                d.windowCount(160, 120)});
    }
    printRelative("adaptive step-size sweep (scale 1.25)", adaptive_pts);
    return 0;
}
