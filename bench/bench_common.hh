/**
 * @file
 * Shared helpers for the benchmark harnesses: a banner format and the
 * standard training recipes (authentication net, detection cascade) so
 * every bench reproduces the same models the tests validate.
 */

#ifndef INCAM_BENCH_BENCH_COMMON_HH
#define INCAM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

namespace incam {

/** Print a titled banner for one reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &what)
{
    std::printf("\n=================================================="
                "====================\n");
    std::printf("%s — %s\n", artifact.c_str(), what.c_str());
    std::printf("===================================================="
                "==================\n");
}

/** One-line annotation of the paper's reference result. */
inline void
paperSays(const std::string &claim)
{
    std::printf("paper: %s\n", claim.c_str());
}

} // namespace incam

#endif // INCAM_BENCH_BENCH_COMMON_HH
