/**
 * @file
 * Fault injection and lossy-link recovery: measured ledgers vs the
 * closed-form delivery model, and adaptive degrade-to-local vs a
 * fixed cut on blackout traces.
 *
 * The paper's cost model prices one lossless transmission per
 * delivered frame; the deployments it targets (backscatter FA swarms,
 * RF-harvest power budgets) are exactly the ones where transmissions
 * fail. This harness measures what the runtime's recovery machinery
 * actually delivers under a seeded FaultPlan and holds it against the
 * analytical loss model:
 *
 *  - A loss x retry grid (counting shape, frame clock): per-attempt
 *    loss p in {0, 0.1, 0.3, 0.5} crossed with retry budgets R in
 *    {0, 1, 3}. Delivered fraction must track 1 - p^(1+R) and air
 *    bytes must track E[attempts] x cut bytes, both within 10%; the
 *    ledger invariant offered == delivered + dropped must hold on
 *    every cell.
 *
 *  - A blackout trace (20 s outage in a 60 s run): the adaptive
 *    controller's degrade-to-local mode against the same fixed cut
 *    that just keeps burning its retry budget. The adaptive run must
 *    deliver strictly more frames, degrade and heal exactly once
 *    each, and the fixed run must match the loss-aware model's
 *    delivered fraction.
 *
 *   bench_faults [--quick]
 *
 * Ends with one BENCH_JSON line for trajectory tracking; exits
 * non-zero if any gate fails.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adapt/controller.hh"
#include "bench_common.hh"
#include "core/network.hh"
#include "fault/fault.hh"
#include "fault/loss_model.hh"
#include "runtime/runtime.hh"
#include "trace/trace.hh"

using namespace incam;

namespace {

constexpr double kModelTolerance = 0.10; ///< measured vs closed form

NetworkLink
radioLink(const std::string &name, double bytes_per_sec,
          double nj_per_bit)
{
    NetworkLink l;
    l.name = name;
    l.bandwidth = Bandwidth::bytesPerSec(bytes_per_sec);
    l.energy_per_bit = Energy::nanojoules(nj_per_bit);
    return l;
}

/** The adaptive-test crossover pipeline: stream the raw 1000-byte
 *  frame (cut 0) or compute in camera for 50 uJ and ship 100 bytes. */
Pipeline
offloadablePipeline()
{
    Pipeline p("offloadable", DataSize::bytes(1000));
    Block reduce("Reduce", /*optional=*/false, DataSize::bytes(100));
    reduce.addImpl(Impl::Asic,
                   {Time::milliseconds(5), Energy::microjoules(50)});
    p.add(reduce);
    return p;
}

RuntimeOptions
countingOptions(int64_t frames, double trace_fps)
{
    RuntimeOptions o;
    o.frames = frames;
    o.gating = GatingMode::None;
    o.pace_stages = false;
    o.pace_link = false;
    o.trace_fps = trace_fps;
    return o;
}

/** One cell of the loss x retry grid. */
struct GridResult
{
    double loss = 0.0;
    int retries = 0;
    int64_t offered = 0;
    int64_t delivered = 0;
    int64_t tx_attempts = 0;
    double model_p = 1.0;      ///< closed-form P(delivered)
    double model_attempts = 1.0;
    double retry_bytes = 0.0;
    double retry_energy_uj = 0.0;
    bool consistent = false;

    double
    deliveredFrac() const
    {
        return static_cast<double>(delivered) /
               static_cast<double>(offered);
    }

    /** Measured air bytes over the model's expectation. */
    double
    bytesRatio() const
    {
        return static_cast<double>(tx_attempts) /
               (model_attempts * static_cast<double>(offered));
    }

    bool
    pass() const
    {
        if (!consistent) {
            return false;
        }
        // p = 0 is deterministic: exact, not statistical.
        if (loss == 0.0) {
            return delivered == offered &&
                   tx_attempts == offered;
        }
        return std::abs(deliveredFrac() / model_p - 1.0) <=
                   kModelTolerance &&
               std::abs(bytesRatio() - 1.0) <= kModelTolerance;
    }
};

GridResult
runGridCell(double loss, int retries, int64_t frames)
{
    const Pipeline pipe = offloadablePipeline();
    FaultPlan plan;
    plan.seed = 1000 + static_cast<uint64_t>(loss * 100.0) * 10 +
                static_cast<uint64_t>(retries);
    plan.tx_loss = loss;
    const FaultInjector inj(plan);

    RuntimeOptions opts = countingOptions(frames, 4.0);
    opts.delivery.max_retries = retries;
    opts.delivery.ack_timeout = 0.02;
    opts.delivery.backoff_base = 0.05;
    StreamingPipeline sp(pipe, PipelineConfig::full(pipe, Impl::Asic, 0),
                         radioLink("lossy", 1e6, 1.0), opts);
    sp.setFaultInjector(&inj);
    const RuntimeReport rep = sp.run();

    DeliveryModelPolicy pol;
    pol.max_retries = retries;
    pol.ack_timeout = 0.02;
    pol.backoff_base = 0.05;
    const DeliveryModel m = expectedDelivery(loss, pol);

    GridResult r;
    r.loss = loss;
    r.retries = retries;
    r.offered = rep.ledger.offered;
    r.delivered = rep.ledger.delivered;
    r.tx_attempts = rep.ledger.tx_attempts;
    r.model_p = m.p_delivered;
    r.model_attempts = m.expected_attempts;
    r.retry_bytes = rep.ledger.retry_bytes.b();
    r.retry_energy_uj = rep.ledger.retry_energy.uj();
    r.consistent = rep.ledger.consistent();
    return r;
}

/** The blackout showdown: adaptive degrade-to-local vs the fixed cut. */
struct BlackoutResult
{
    int64_t offered = 0;
    int64_t adaptive_delivered = 0;
    int64_t adaptive_local = 0;
    int64_t fixed_delivered = 0;
    double fixed_model_frac = 0.0; ///< loss-aware model, fixed cut
    int64_t switches = 0;
    bool healed = false;
    bool adaptive_consistent = false;
    bool fixed_consistent = false;
    double blackout_seconds = 0.0;

    bool
    pass() const
    {
        const double fixed_frac =
            static_cast<double>(fixed_delivered) /
            static_cast<double>(offered);
        return adaptive_consistent && fixed_consistent && healed &&
               switches == 2 &&
               adaptive_delivered > fixed_delivered &&
               std::abs(fixed_frac / fixed_model_frac - 1.0) <=
                   kModelTolerance;
    }
};

BlackoutResult
runBlackoutScenario()
{
    const Pipeline pipe = offloadablePipeline();
    const double fps = 4.0;
    const int64_t frames = 240; // 60 s, 20 of them dark
    FaultPlan plan;
    plan.blackouts = {{Time::seconds(20.0), Time::seconds(20.0)}};
    const FaultInjector inj(plan);
    const NetworkLink link = radioLink("cheap", 1e6, 1.0);

    BlackoutResult res;
    res.offered = frames;

    // Fixed cut: every blackout frame burns its (zero-retry) budget.
    {
        RuntimeOptions opts = countingOptions(frames, fps);
        StreamingPipeline sp(pipe,
                             PipelineConfig::full(pipe, Impl::Asic, 0),
                             link, opts);
        sp.setFaultInjector(&inj);
        const RuntimeReport rep = sp.run();
        res.fixed_delivered = rep.ledger.delivered;
        res.fixed_consistent = rep.ledger.consistent();
        res.blackout_seconds = rep.ledger.blackout_seconds;
    }
    DeliveryModelPolicy pol;
    res.fixed_model_frac =
        expectedDeliveryOverPlan(plan, fps, frames, pol).p_delivered;

    // Adaptive: degrade to the zero-offload cut when the loss belief
    // saturates, keep probing, restore after the heal.
    {
        RuntimeOptions opts = countingOptions(frames, fps);
        StreamingPipeline sp(pipe,
                             PipelineConfig::full(pipe, Impl::Asic, 0),
                             link, opts);
        sp.setFaultInjector(&inj);

        ControllerOptions copts;
        copts.goal.kind = OptimizerGoal::Kind::MinEnergy;
        copts.decision_period = 2.0;
        copts.sample_period = 0.5;
        copts.ewma_horizon = Time::seconds(1.0);
        copts.hysteresis = 0.05;
        copts.min_dwell = 1;
        copts.trace_fps = fps;
        copts.degrade_loss_threshold = 0.9;
        copts.restore_loss_threshold = 0.2;
        AdaptiveController ctl(pipe, link, copts);
        ctl.useFaultPlan(&plan);
        ctl.attach(sp);
        const RuntimeReport rep = sp.run();
        res.adaptive_delivered = rep.ledger.delivered;
        res.adaptive_local = rep.ledger.delivered_local;
        res.adaptive_consistent = rep.ledger.consistent();
        res.switches = ctl.switches();
        res.healed = !ctl.degraded();
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    banner("Fault injection and lossy-link recovery",
           "measured loss ledgers vs the closed-form delivery model");
    paperSays("the cost model prices one lossless transmission per "
              "delivered frame; its target deployments are the ones "
              "where transmissions fail");

    const int64_t grid_frames = quick ? 400 : 2000;
    const double losses[] = {0.0, 0.1, 0.3, 0.5};
    const int retry_budgets[] = {0, 1, 3};

    std::vector<GridResult> grid;
    std::printf("\n%-6s %-8s %10s %10s %10s %10s %12s\n", "loss",
                "retries", "delivered", "model-P", "attempts",
                "bytes-r", "retry-uJ");
    bool all_pass = true;
    for (double p : losses) {
        for (int r : retry_budgets) {
            const GridResult cell = runGridCell(p, r, grid_frames);
            const bool ok = cell.pass();
            all_pass = all_pass && ok;
            std::printf("%-6.2f %-8d %9.4f %10.4f %10.3f %10.3f "
                        "%12.1f%s\n",
                        cell.loss, cell.retries, cell.deliveredFrac(),
                        cell.model_p,
                        static_cast<double>(cell.tx_attempts) /
                            static_cast<double>(cell.offered),
                        cell.bytesRatio(), cell.retry_energy_uj,
                        ok ? "" : "  <-- GATE FAILED");
            grid.push_back(cell);
        }
    }

    const BlackoutResult bo = runBlackoutScenario();
    const bool bo_ok = bo.pass();
    all_pass = all_pass && bo_ok;
    std::printf("\nblackout (%.0f s dark of %.0f s): fixed %lld/%lld "
                "(model %.3f)  adaptive %lld/%lld (%lld local, "
                "%lld switches, healed=%s)%s\n",
                bo.blackout_seconds,
                static_cast<double>(bo.offered) / 4.0,
                static_cast<long long>(bo.fixed_delivered),
                static_cast<long long>(bo.offered),
                bo.fixed_model_frac,
                static_cast<long long>(bo.adaptive_delivered),
                static_cast<long long>(bo.offered),
                static_cast<long long>(bo.adaptive_local),
                static_cast<long long>(bo.switches),
                bo.healed ? "yes" : "NO",
                bo_ok ? "" : "  <-- GATE FAILED");

    std::printf("\nBENCH_JSON {\"bench\":\"faults\",\"quick\":%s,"
                "\"grid\":[",
                quick ? "true" : "false");
    for (size_t i = 0; i < grid.size(); ++i) {
        const GridResult &c = grid[i];
        std::printf("%s{\"loss\":%.2f,\"retries\":%d,"
                    "\"delivered_frac\":%.4f,\"model_p\":%.4f,"
                    "\"bytes_ratio\":%.4f,\"retry_energy_uj\":%.2f,"
                    "\"consistent\":%s}",
                    i ? "," : "", c.loss, c.retries, c.deliveredFrac(),
                    c.model_p, c.bytesRatio(), c.retry_energy_uj,
                    c.consistent ? "true" : "false");
    }
    std::printf("],\"blackout\":{\"offered\":%lld,"
                "\"fixed_delivered\":%lld,\"fixed_model_frac\":%.4f,"
                "\"adaptive_delivered\":%lld,\"adaptive_local\":%lld,"
                "\"switches\":%lld,\"healed\":%s}}\n",
                static_cast<long long>(bo.offered),
                static_cast<long long>(bo.fixed_delivered),
                bo.fixed_model_frac,
                static_cast<long long>(bo.adaptive_delivered),
                static_cast<long long>(bo.adaptive_local),
                static_cast<long long>(bo.switches),
                bo.healed ? "true" : "false");

    if (!all_pass) {
        std::fprintf(stderr, "\nbench_faults: GATES FAILED\n");
        return 1;
    }
    std::printf("\nall gates passed: every ledger balanced, delivery "
                "and air bytes within %.0f%% of the loss model, "
                "adaptive recovery ahead of the fixed cut on the "
                "blackout trace\n",
                100.0 * kModelTolerance);
    return 0;
}
