/**
 * @file
 * E12 — kernel microbenchmarks (google-benchmark).
 *
 * Wall-clock costs of the substrate kernels on the host. These do not
 * reproduce paper numbers (the paper's platforms are modeled
 * analytically); they document the proxy-scale cost of each kernel and
 * guard against accidental algorithmic regressions (e.g. the integral
 * image degenerating to O(n^2)).
 */

#include <benchmark/benchmark.h>

#include "bilateral/stereo.hh"
#include "image/integral.hh"
#include "image/ops.hh"
#include "motion/motion.hh"
#include "snnap/accelerator.hh"
#include "vj/haar.hh"
#include "workload/stereo_scene.hh"
#include "workload/texture.hh"

using namespace incam;

namespace {

ImageU8
benchFrame(int w, int h)
{
    return toU8(makeValueNoise(w, h, 24, 3, 99));
}

void
BM_IntegralImage(benchmark::State &state)
{
    const int side = static_cast<int>(state.range(0));
    const ImageU8 img = benchFrame(side, side);
    for (auto _ : state) {
        IntegralImage ii(img);
        benchmark::DoNotOptimize(ii.rectSum(0, 0, side, side));
    }
    state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_IntegralImage)->Arg(120)->Arg(480);

void
BM_HaarEvaluate(benchmark::State &state)
{
    const ImageU8 img = benchFrame(160, 120);
    const IntegralImage ii(img);
    const auto pool = enumerateFeatures(20, 4, 4);
    const double inv_norm = windowInvNorm(ii, 10, 10, 20);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pool[i % pool.size()].evaluate(ii, 10, 10, 1.0, inv_norm));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HaarEvaluate);

void
BM_MotionDetect(benchmark::State &state)
{
    MotionDetector md;
    const ImageU8 a = benchFrame(160, 120);
    ImageU8 b = a;
    b.at(5, 5) = 255;
    bool flip = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(md.update(flip ? a : b));
        flip = !flip;
    }
    state.SetItemsProcessed(state.iterations() * 160 * 120);
}
BENCHMARK(BM_MotionDetect);

void
BM_GridSplat(benchmark::State &state)
{
    const ImageF img = makeValueNoise(320, 240, 24, 3, 7);
    for (auto _ : state) {
        BilateralGrid grid(320, 240, 8.0, 16);
        grid.splat(img, img, nullptr);
        benchmark::DoNotOptimize(grid.vertexWeight(0, 0, 0));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_GridSplat);

void
BM_GridBlur(benchmark::State &state)
{
    const ImageF img = makeValueNoise(320, 240, 24, 3, 7);
    BilateralGrid grid(320, 240, 8.0, 16);
    grid.splat(img, img, nullptr);
    for (auto _ : state) {
        grid.blur();
        benchmark::DoNotOptimize(grid.vertexValue(0, 0, 0));
    }
    state.SetItemsProcessed(state.iterations() * grid.vertexCount());
}
BENCHMARK(BM_GridBlur);

void
BM_GridSlice(benchmark::State &state)
{
    const ImageF img = makeValueNoise(320, 240, 24, 3, 7);
    BilateralGrid grid(320, 240, 8.0, 16);
    grid.splat(img, img, nullptr);
    grid.blur();
    for (auto _ : state) {
        benchmark::DoNotOptimize(grid.slice(img));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_GridSlice);

void
BM_BssaFullPair(benchmark::State &state)
{
    StereoSceneConfig cfg;
    cfg.width = 160;
    cfg.height = 120;
    const StereoPair pair = makeStereoPair(cfg);
    BssaConfig bc;
    bc.max_disparity = 16;
    bc.solver_iterations = 8;
    const BssaStereo stereo(bc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stereo.compute(pair.left, pair.right));
    }
}
BENCHMARK(BM_BssaFullPair);

void
BM_SnnapInference(benchmark::State &state)
{
    const Mlp net(MlpTopology{{400, 8, 1}}, 3);
    QuantConfig qc;
    qc.width = static_cast<int>(state.range(0));
    const QuantizedMlp qnet(net, qc);
    SnnapConfig sc;
    sc.num_pes = 8;
    SnnapAccelerator accel(qnet, sc);
    const std::vector<int64_t> zeros(400, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel.runRaw(zeros));
    }
    state.SetItemsProcessed(state.iterations() * 3208);
}
BENCHMARK(BM_SnnapInference)->Arg(8)->Arg(16);

void
BM_Demosaic(benchmark::State &state)
{
    // Stand-in for the B1 kernel: bilinear resize of a Bayer-sized
    // frame (the full pipeline's demosaic lives in vr/blocks, which
    // needs a rig; this guards the underlying resample cost).
    const ImageF img = makeValueNoise(384, 216, 24, 3, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(resizeBilinear(img, 768, 432));
    }
    state.SetItemsProcessed(state.iterations() * 768 * 432);
}
BENCHMARK(BM_Demosaic);

} // namespace

BENCHMARK_MAIN();
