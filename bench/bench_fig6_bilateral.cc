/**
 * @file
 * E11 — Fig. 6: "The bilateral filter is an edge-aware filter."
 *
 * Reproduces the figure's 1-D experiment numerically: a noisy step
 * signal is smoothed by (b) a moving average, which destroys the edge,
 * and (d) a bilateral filter computed through the bilateral grid, which
 * denoises while keeping the edge sharp. Reports noise suppression away
 * from the edge and fidelity at the edge, plus the grid work involved.
 */

#include <cmath>

#include "bench_common.hh"
#include "bilateral/bilateral_filter.hh"
#include "common/table.hh"

using namespace incam;

namespace {

/** RMS distance to the clean step over a sample range. */
double
rmsError(const std::vector<float> &sig, int from, int to, float lo,
         float hi)
{
    double acc = 0.0;
    int n = 0;
    const int edge = static_cast<int>(sig.size()) / 2;
    for (int i = from; i < to; ++i) {
        const float truth = i < edge ? lo : hi;
        acc += (sig[static_cast<size_t>(i)] - truth) *
               (sig[static_cast<size_t>(i)] - truth);
        ++n;
    }
    return std::sqrt(acc / n);
}

} // namespace

int
main()
{
    banner("E11 (Fig. 6)", "edge-aware filtering in bilateral space");
    paperSays("moving average smooths out the edge; the bilateral "
              "filter denoises while preserving it");

    const int n = 200;
    const float lo = 0.25f, hi = 0.75f;
    const auto noisy = makeNoisyStep(n, lo, hi, 0.05f, 42);
    const auto averaged = movingAverage1d(noisy, 10);
    const auto bilateral = bilateralFilter1d(noisy, 8.0, 12, 2);

    TableWriter table({"signal", "RMS err (flat regions)",
                       "RMS err (edge band)", "edge abs err"});
    auto row = [&](const char *name, const std::vector<float> &sig) {
        const double flat = 0.5 * (rmsError(sig, 10, n / 2 - 15, lo, hi) +
                                   rmsError(sig, n / 2 + 15, n - 10, lo,
                                            hi));
        const double edge =
            rmsError(sig, n / 2 - 12, n / 2 + 12, lo, hi);
        table.addRow({name, TableWriter::num(flat, 4),
                      TableWriter::num(edge, 4),
                      TableWriter::num(stepEdgeError(sig, lo, hi), 4)});
    };
    row("(a) noisy input", noisy);
    row("(b) moving average", averaged);
    row("(d) bilateral (grid)", bilateral);
    table.print("Fig. 6: smoothing a noisy step");

    std::printf("\nexpected shape: both filters fix the flat regions; "
                "only the bilateral filter keeps the edge band clean.\n");
    return 0;
}
