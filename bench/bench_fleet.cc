/**
 * @file
 * The fleet model vs the executing fleet, swept over scale and links.
 *
 * For every (link, camera count) point this harness builds a
 * heterogeneous fleet — WISPCam-style FA swarms on backscatter,
 * raw-streaming FA cameras on Wi-Fi, a VR rig with mixed offload cuts
 * on 25 GbE; mixed frame sizes, cuts and weights throughout — and
 * measures it twice against the analytical fleet model:
 *
 *  - a *paced* run (throughput semantics, saturated sources): the sum
 *    of per-camera measured FPS is held against
 *    FleetModelReport::aggregate_fps, and each camera against its
 *    predicted contended share;
 *  - a *counting* run (energy semantics, pacing off): each camera's
 *    measured J per source frame is held against its duty-scaled
 *    analytical prediction.
 *
 * Camera counts sweep 1 / 4 / 16 / 64 — from a solo camera (the
 * arbiter must reduce to a plain goodput pacer) to a 64-camera
 * backscatter swarm and a VR rig sharing one trunk. Frame budgets are
 * proportional to each camera's predicted rate so the fleet stays
 * stationary (everyone finishes together), and time_scale compresses
 * each point to under ~2 s of wall time.
 *
 * A second sweep takes the discrete-event engine far beyond thread
 * scale: 1k / 10k (and 100k in full mode) WISPCam-style cameras on one
 * backscatter uplink, replayed on a single core in model time. Each
 * point runs paced (fluid-fair SimLink; aggregate FPS held against
 * the fleet model within 1.8%) and counting (frame and byte totals
 * exact), and the engine must sustain at least 100k events/s of host
 * throughput — the "100k cameras on one core" claim, gated.
 *
 *   bench_fleet [--quick]
 *
 * Exits non-zero if any point's aggregate FPS strays more than 15%
 * from the model or any camera's energy strays more than 3% — the
 * fleet-model fidelity bar — or if a discrete-event point misses its
 * agreement, exactness or events/s gates. Ends with one BENCH_JSON
 * line for trajectory tracking.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/fleet_model.hh"
#include "core/network.hh"
#include "fa/scenario.hh"
#include "fleet/fleet.hh"
#include "vr/scenario.hh"

using namespace incam;

namespace {

constexpr double kAggFpsTolerance = 0.15;
constexpr double kEnergyTolerance = 0.03;

/** Discrete-event gates: model agreement on the paced run, exact frame
 *  and byte totals on the counting run, and a floor on how fast the
 *  engine replays model time on the host. */
constexpr double kDesFpsTolerance = 0.018;
constexpr double kDesMinEventsPerSec = 1.0e5;

/** One camera blueprint: pipeline + config + weight. */
struct CameraSpec
{
    std::string name;
    const Pipeline *pipeline = nullptr;
    PipelineConfig config;
    double weight = 1.0;
};

/** One swept fleet point and its measured-vs-model outcome. */
struct PointResult
{
    std::string link_name;
    int cameras = 0;
    SharePolicy policy = SharePolicy::Fair;
    double predicted_agg_fps = 0.0;
    double measured_agg_fps = 0.0;
    double max_cam_fps_err = 0.0;
    double max_energy_err = 0.0;
    double time_scale = 1.0;
    double wall_seconds = 0.0;

    double
    aggError() const
    {
        return std::abs(measured_agg_fps - predicted_agg_fps) /
               predicted_agg_fps;
    }

    bool
    within() const
    {
        return aggError() <= kAggFpsTolerance &&
               max_energy_err <= kEnergyTolerance;
    }
};

/** Model, then run, one fleet point in both semantics. */
PointResult
measurePoint(const std::string &link_name, const NetworkLink &link,
             const std::vector<CameraSpec> &specs, SharePolicy policy,
             bool quick)
{
    PointResult res;
    res.link_name = link_name;
    res.cameras = static_cast<int>(specs.size());
    res.policy = policy;

    // ---- model ----
    std::vector<FleetCameraModel> model_cams;
    for (const CameraSpec &s : specs) {
        FleetCameraModel m;
        m.name = s.name;
        m.pipeline = s.pipeline;
        m.config = s.config;
        m.weight = s.weight;
        model_cams.push_back(std::move(m));
    }
    const FleetModelReport model = fleetReport(model_cams, link, policy);
    res.predicted_agg_fps = model.aggregate_fps;

    // ---- paced throughput run ----
    // Frames proportional to each camera's predicted rate keep the
    // contention stationary; time_scale targets a host-friendly
    // per-camera real rate (gentler for wide fleets, which already
    // multiply the arbiter's event rate by N).
    double min_fps = model.cameras[0].fps, max_fps = min_fps;
    for (const FleetShare &share : model.cameras) {
        min_fps = std::min(min_fps, share.fps);
        max_fps = std::max(max_fps, share.fps);
    }
    const double base_frames = quick ? 16.0 : 28.0;
    const double target_real_fps = specs.size() > 16 ? 60.0 : 120.0;
    const double t_model = base_frames / min_fps;
    res.time_scale = max_fps / target_real_fps;

    FleetOptions paced;
    paced.policy = policy;
    paced.gating = GatingMode::None;
    paced.time_scale = res.time_scale;
    CameraFleet fleet(link, paced);
    for (size_t i = 0; i < specs.size(); ++i) {
        FleetCamera cam(specs[i].name, *specs[i].pipeline,
                        specs[i].config);
        cam.weight = specs[i].weight;
        cam.frames = std::max<int64_t>(
            8, static_cast<int64_t>(
                   std::lround(t_model * model.cameras[i].fps)));
        fleet.addCamera(std::move(cam));
    }
    const FleetRunReport run = fleet.run();
    res.measured_agg_fps = run.aggregate_model_fps;
    res.wall_seconds = run.wall_seconds;
    for (size_t i = 0; i < specs.size(); ++i) {
        const double predicted = model.cameras[i].fps;
        const double measured = run.cameras[i].runtime.model_fps;
        res.max_cam_fps_err =
            std::max(res.max_cam_fps_err,
                     std::abs(measured - predicted) / predicted);
    }

    // ---- counting energy run ----
    // Contention changes when frames arrive, never what each frame
    // costs, so energy validates in fast counting mode. 200 frames
    // keeps every FA duty product integral (0.30, 0.30 x 0.05).
    FleetOptions counting;
    counting.policy = policy;
    counting.gating = GatingMode::Model;
    counting.pace_stages = false;
    counting.pace_link = false;
    CameraFleet counting_fleet(link, counting);
    for (const CameraSpec &s : specs) {
        FleetCamera cam(s.name, *s.pipeline, s.config);
        cam.weight = s.weight;
        cam.frames = 200;
        counting_fleet.addCamera(std::move(cam));
    }
    const FleetRunReport counted = counting_fleet.run();
    for (size_t i = 0; i < specs.size(); ++i) {
        const double predicted = model.cameras[i].jpf.j();
        if (predicted <= 0.0) {
            continue; // VR all-local: the model prices no energy
        }
        const double measured =
            counted.cameras[i].runtime.joules_per_frame.j();
        res.max_energy_err =
            std::max(res.max_energy_err,
                     std::abs(measured - predicted) / predicted);
    }
    return res;
}

/** One discrete-event scale point and its gate outcomes. */
struct DesPointResult
{
    int cameras = 0;
    double predicted_agg_fps = 0.0;
    double measured_agg_fps = 0.0;
    double model_seconds = 0.0; ///< paced run's simulated span
    int64_t events = 0;         ///< engine events, both runs
    double host_seconds = 0.0;  ///< host wall across both runs
    bool exact = false;         ///< counting totals frame/byte exact

    double
    aggError() const
    {
        return std::abs(measured_agg_fps - predicted_agg_fps) /
               predicted_agg_fps;
    }

    double
    eventsPerSec() const
    {
        return host_seconds > 0.0
                   ? static_cast<double>(events) / host_seconds
                   : 0.0;
    }

    bool
    within() const
    {
        return aggError() <= kDesFpsTolerance && exact &&
               eventsPerSec() >= kDesMinEventsPerSec;
    }
};

/**
 * One discrete-event point: an n-camera WISPCam swarm (two crop
 * geometries, fair share) on one backscatter uplink, replayed in model
 * time on a single core. The paced run is held against the fleet
 * model's byte-fair waterfill; the counting run must account every
 * frame and every uplink byte exactly; both runs together must clear
 * the events/s floor.
 */
DesPointResult
measureDesPoint(int n, const Pipeline &fa_large,
                const Pipeline &fa_small, bool quick)
{
    DesPointResult res;
    res.cameras = n;

    std::vector<CameraSpec> specs;
    specs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        CameraSpec s;
        s.name = "wisp" + std::to_string(i);
        s.pipeline = i % 2 == 0 ? &fa_large : &fa_small;
        s.config = PipelineConfig::full(*s.pipeline, Impl::Asic, 2);
        specs.push_back(std::move(s));
    }

    // ---- model ----
    const NetworkLink link = backscatterUplink();
    std::vector<FleetCameraModel> model_cams;
    model_cams.reserve(specs.size());
    for (const CameraSpec &s : specs) {
        FleetCameraModel m;
        m.name = s.name;
        m.pipeline = s.pipeline;
        m.config = s.config;
        model_cams.push_back(std::move(m));
    }
    const FleetModelReport model =
        fleetReport(model_cams, link, SharePolicy::Fair);
    res.predicted_agg_fps = model.aggregate_fps;

    RunOptions des;
    des.mode = ExecutionMode::DiscreteEvent;

    // ---- paced model-agreement run ----
    // Frame budgets proportional to each camera's fair share keep the
    // swarm stationary to the last frame, so the steady-state rate
    // estimator sees uniform departure spacing end to end.
    double min_fps = model.cameras[0].fps;
    for (const FleetShare &share : model.cameras) {
        min_fps = std::min(min_fps, share.fps);
    }
    const double base_frames = quick ? 5.0 : 8.0;
    const double t_model = base_frames / min_fps;

    FleetOptions paced;
    paced.policy = SharePolicy::Fair;
    paced.gating = GatingMode::None;
    paced.queue_capacity = 4;
    paced.epoch_capacity = 4; // never reconfigures; keep 100k light
    CameraFleet fleet(link, paced);
    for (size_t i = 0; i < specs.size(); ++i) {
        FleetCamera cam(specs[i].name, *specs[i].pipeline,
                        specs[i].config);
        cam.frames = std::max<int64_t>(
            4, static_cast<int64_t>(
                   std::lround(t_model * model.cameras[i].fps)));
        fleet.addCamera(std::move(cam));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const FleetRunReport run = fleet.run(des);
    res.host_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    res.measured_agg_fps = run.aggregate_model_fps;
    res.model_seconds = run.wall_seconds;
    res.events = run.des_events;

    // ---- counting exactness run ----
    // Pacing off, frame clock on: the engine replays pure accounting.
    // Every offered frame must be delivered and every uplink byte must
    // equal the configs' cut bytes — integers below 2^53, so the sums
    // are exact and the gate is equality, not tolerance.
    const int64_t count_frames = 10;
    FleetOptions counting;
    counting.policy = SharePolicy::Fair;
    counting.gating = GatingMode::None;
    counting.pace_stages = false;
    counting.pace_link = false;
    counting.trace_fps = 30.0;
    counting.queue_capacity = 4;
    counting.epoch_capacity = 4;
    CameraFleet counting_fleet(link, counting);
    double expected_bytes = 0.0;
    for (const CameraSpec &s : specs) {
        FleetCamera cam(s.name, *s.pipeline, s.config);
        cam.frames = count_frames;
        counting_fleet.addCamera(std::move(cam));
        expected_bytes +=
            static_cast<double>(count_frames) *
            PipelineEvaluator(*s.pipeline, link).cutBytes(s.config).b();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const FleetRunReport counted = counting_fleet.run(des);
    res.host_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t1)
                            .count();
    res.events += counted.des_events;
    const int64_t expected_frames = count_frames * n;
    res.exact = counted.ledger.offered == expected_frames &&
                counted.ledger.delivered == expected_frames &&
                counted.ledger.dropped == 0 &&
                counted.uplink_bytes.b() == expected_bytes;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }

    banner("fleet vs model",
           "N cameras, one arbitrated uplink: measured shares held "
           "against the fleet model");
    paperSays("one camera, one link; the deployments it motivates — "
              "WISPCam swarms, VR rigs — share the medium");
    std::printf("mode: %s\n\n", quick ? "quick (CI smoke)" : "full");

    // The two FA flavours (two sensor geometries) and the VR rig.
    const Pipeline fa_large = buildFaPipeline(nominalFaMeasurements());
    const Pipeline fa_small =
        buildFaPipeline(nominalFaMeasurements(128, 96, 18));
    const Pipeline vr = buildVrPipeline(VrPipelineModel{});

    const std::vector<int> counts = {1, 4, 16, 64};
    std::vector<PointResult> results;

    for (int n : counts) {
        // WISPCam swarm on backscatter: everyone computes in camera
        // and uploads the detected face crop (cut 2); two crop
        // geometries; fair arbitration.
        std::vector<CameraSpec> swarm;
        for (int i = 0; i < n; ++i) {
            CameraSpec s;
            s.name = "wisp" + std::to_string(i);
            s.pipeline = i % 2 == 0 ? &fa_large : &fa_small;
            s.config = PipelineConfig::full(*s.pipeline, Impl::Asic, 2);
            swarm.push_back(std::move(s));
        }
        results.push_back(measurePoint("backscatter",
                                       backscatterUplink(), swarm,
                                       SharePolicy::Fair, quick));

        // Raw-streaming FA cameras on Wi-Fi (cut 0, the "dumb
        // camera" fleet): two frame geometries, every fourth camera
        // weighted double — weighted arbitration.
        std::vector<CameraSpec> streamers;
        for (int i = 0; i < n; ++i) {
            CameraSpec s;
            s.name = "cam" + std::to_string(i);
            s.pipeline = i % 2 == 0 ? &fa_large : &fa_small;
            s.config = PipelineConfig::full(*s.pipeline, Impl::Asic, 0);
            s.weight = i % 4 == 3 ? 2.0 : 1.0;
            streamers.push_back(std::move(s));
        }
        results.push_back(measurePoint("wifi", wifiUplink(), streamers,
                                       SharePolicy::Weighted, quick));

        // VR rig on 25 GbE: alternating offload cuts (full-local
        // stitch upload vs depth-map offload), the bigger uploads
        // weighted double — weighted arbitration.
        std::vector<CameraSpec> rig;
        for (int i = 0; i < n; ++i) {
            CameraSpec s;
            s.name = "vr" + std::to_string(i);
            s.pipeline = &vr;
            const int cut = i % 2 == 0 ? 4 : 3;
            s.config = PipelineConfig::full(vr, Impl::Fpga, cut);
            s.weight = cut == 3 ? 2.0 : 1.0;
            rig.push_back(std::move(s));
        }
        results.push_back(measurePoint("25gbe", twentyFiveGbE(), rig,
                                       SharePolicy::Weighted, quick));
    }

    std::printf("%-12s %4s %-9s %12s %12s %7s %9s %9s %7s\n", "link",
                "cams", "policy", "pred aggFPS", "meas aggFPS", "err",
                "worstFPS", "worstE", "wall");
    bool within = true;
    for (const PointResult &r : results) {
        within = within && r.within();
        std::printf("%-12s %4d %-9s %12.2f %12.2f %6.1f%% %8.1f%% "
                    "%8.2f%% %6.2fs%s\n",
                    r.link_name.c_str(), r.cameras,
                    sharePolicyName(r.policy), r.predicted_agg_fps,
                    r.measured_agg_fps, 100.0 * r.aggError(),
                    100.0 * r.max_cam_fps_err,
                    100.0 * r.max_energy_err, r.wall_seconds,
                    r.within() ? "" : "  <-- OUT OF TOLERANCE");
    }

    // ---- discrete-event scale sweep ----
    // Past the thread pool's reach: the same swarm at gateway scale,
    // one event loop, one core. Quick mode stops at 10k cameras; full
    // mode adds the 100k point behind the paper's headline claim.
    std::vector<int> des_counts = {1000, 10000};
    if (!quick) {
        des_counts.push_back(100000);
    }
    std::printf("\ndiscrete-event scale sweep (backscatter swarm, "
                "fair share, one core)\n");
    std::printf("%8s %12s %12s %7s %12s %10s %10s %6s\n", "cams",
                "pred aggFPS", "meas aggFPS", "err", "model span",
                "events", "events/s", "exact");
    std::vector<DesPointResult> des_results;
    for (int n : des_counts) {
        const DesPointResult r =
            measureDesPoint(n, fa_large, fa_small, quick);
        within = within && r.within();
        std::printf("%8d %12.3f %12.3f %6.2f%% %11.0fs %10lld %10.0f "
                    "%6s%s\n",
                    r.cameras, r.predicted_agg_fps,
                    r.measured_agg_fps, 100.0 * r.aggError(),
                    r.model_seconds,
                    static_cast<long long>(r.events), r.eventsPerSec(),
                    r.exact ? "yes" : "NO",
                    r.within() ? "" : "  <-- OUT OF TOLERANCE");
        des_results.push_back(r);
    }

    std::printf("\nBENCH_JSON {\"bench\":\"fleet\",\"quick\":%s,"
                "\"points\":[",
                quick ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult &r = results[i];
        std::printf("%s{\"link\":\"%s\",\"cameras\":%d,"
                    "\"policy\":\"%s\",\"predicted_agg_fps\":%.3f,"
                    "\"measured_agg_fps\":%.3f,\"agg_err\":%.4f,"
                    "\"max_cam_fps_err\":%.4f,\"max_energy_err\":%.4f,"
                    "\"time_scale\":%.5f,\"wall_s\":%.3f}",
                    i ? "," : "", r.link_name.c_str(), r.cameras,
                    sharePolicyName(r.policy), r.predicted_agg_fps,
                    r.measured_agg_fps, r.aggError(),
                    r.max_cam_fps_err, r.max_energy_err, r.time_scale,
                    r.wall_seconds);
    }
    std::printf("],\"des_points\":[");
    for (size_t i = 0; i < des_results.size(); ++i) {
        const DesPointResult &r = des_results[i];
        std::printf("%s{\"cameras\":%d,\"predicted_agg_fps\":%.4f,"
                    "\"measured_agg_fps\":%.4f,\"agg_err\":%.5f,"
                    "\"model_s\":%.1f,\"events\":%lld,"
                    "\"events_per_s\":%.0f,\"exact\":%s,"
                    "\"host_s\":%.3f}",
                    i ? "," : "", r.cameras, r.predicted_agg_fps,
                    r.measured_agg_fps, r.aggError(), r.model_seconds,
                    static_cast<long long>(r.events), r.eventsPerSec(),
                    r.exact ? "true" : "false", r.host_seconds);
    }
    std::printf("]}\n");

    if (!within) {
        std::fprintf(stderr,
                     "FAIL: at least one point strayed beyond %.0f%% "
                     "aggregate FPS / %.0f%% energy tolerance, or a "
                     "discrete-event point missed its agreement / "
                     "exactness / %.0fk events-per-second gate\n",
                     100.0 * kAggFpsTolerance,
                     100.0 * kEnergyTolerance,
                     kDesMinEventsPerSec / 1000.0);
        return 1;
    }
    return 0;
}
