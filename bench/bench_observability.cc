/**
 * @file
 * Observability overhead gates: tracing must be near-free when off and
 * cheap when on.
 *
 * The obs layer rides every per-frame hot path (source, stages, queue
 * pops, uplink attempts, delivery), so this harness prices it on the
 * two rigs that bound its use:
 *
 *  - *FA paced rig* (the bench_runtime_vs_model acceptance cuts):
 *    face-auth over Wi-Fi, throughput semantics, cuts 0/2/3. Each cut
 *    runs with obs disabled and with a recorder + registry attached;
 *    the enabled best-of-repeats must stay within 5% wall of the
 *    disabled one. A disabled-vs-disabled A/A pair on the same rig bounds
 *    the noise floor: the disabled configuration itself must show no
 *    measurable cost (the instrumentation guard is one cached pointer
 *    test).
 *
 *  - *1k-camera DES sweep*: a 1000-camera counting fleet on the
 *    discrete-event engine, every camera traced. The enabled run must
 *    sustain at least 90% of the disabled run's host events/s
 *    (<= 10% overhead), and the recorder must not drop events.
 *
 * The harness also writes the CI demo artifacts: a degrade/heal
 * blackout trace with controller decision instants
 * (obs_demo.trace.json — load it in https://ui.perfetto.dev) and its
 * metric snapshot (obs_demo.metrics.jsonl).
 *
 *   bench_observability [--quick]
 *
 * Ends with one BENCH_JSON line; exits non-zero if any gate fails.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adapt/controller.hh"
#include "bench_common.hh"
#include "core/network.hh"
#include "fa/scenario.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/runtime.hh"

using namespace incam;

namespace {

constexpr double kMaxEnabledOverhead = 0.05; ///< FA paced rig
constexpr double kMaxAaSpread = 0.05;        ///< disabled noise floor
constexpr double kMaxDesOverhead = 0.10;     ///< 1k-camera DES sweep

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-repeats: host noise (scheduler, cron, page cache) only
 *  ever adds time, so the minimum is the least-contaminated sample of
 *  each arm — the standard estimator for an overhead ratio. */
double
best(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

NetworkLink
radioLink(const std::string &name, double bytes_per_sec,
          double nj_per_bit)
{
    NetworkLink l;
    l.name = name;
    l.bandwidth = Bandwidth::bytesPerSec(bytes_per_sec);
    l.energy_per_bit = Energy::nanojoules(nj_per_bit);
    return l;
}

Pipeline
offloadablePipeline()
{
    Pipeline p("offloadable", DataSize::bytes(1000));
    Block reduce("Reduce", /*optional=*/false, DataSize::bytes(100));
    reduce.addImpl(Impl::Asic,
                   {Time::milliseconds(5), Energy::microjoules(50)});
    p.add(reduce);
    return p;
}

// ---------------------------------------------------------------------
// FA paced rig: enabled vs disabled vs the A/A noise floor
// ---------------------------------------------------------------------

struct FaCutResult
{
    int cut = 0;
    double disabled_s = 0.0; ///< best-of-repeats wall, obs off
    double enabled_s = 0.0;  ///< best-of-repeats wall, obs on
    double aa_s = 0.0;       ///< second disabled best (A/A pair)
    int64_t events = 0;

    double
    overhead() const
    {
        return enabled_s / disabled_s - 1.0;
    }

    double
    aaSpread() const
    {
        return std::abs(aa_s / disabled_s - 1.0);
    }

    bool
    pass() const
    {
        return overhead() <= kMaxEnabledOverhead &&
               aaSpread() <= kMaxAaSpread;
    }
};

/** One paced throughput-semantics FA run; wall seconds out. */
double
runFaOnce(const Pipeline &fa, int cut, int64_t frames,
          obs::TraceRecorder *rec, obs::MetricsRegistry *reg)
{
    RuntimeOptions opts;
    opts.frames = frames;
    opts.gating = GatingMode::None;
    StreamingPipeline sp(fa, PipelineConfig::full(fa, Impl::Asic, cut),
                        wifiUplink(), opts);
    RunOptions ro;
    ro.obs.recorder = rec;
    ro.obs.registry = reg;
    const double t0 = wallNow();
    sp.run(ro);
    return wallNow() - t0;
}

FaCutResult
measureFaCut(const Pipeline &fa, int cut, int64_t frames, int repeats)
{
    FaCutResult r;
    r.cut = cut;
    std::vector<double> off, on, aa;
    // One untimed warm-up run: the first paced run of a cut pays
    // thread creation and page faults the rest never see.
    runFaOnce(fa, cut, frames / 2, nullptr, nullptr);
    // Interleave the arms so drift (thermal, scheduler) hits all
    // three equally instead of biasing whichever ran last.
    for (int i = 0; i < repeats; ++i) {
        off.push_back(runFaOnce(fa, cut, frames, nullptr, nullptr));
        obs::TraceRecorder rec;
        obs::MetricsRegistry reg;
        on.push_back(runFaOnce(fa, cut, frames, &rec, &reg));
        if (i == 0) {
            r.events =
                static_cast<int64_t>(rec.sortedEvents().size());
        }
        aa.push_back(runFaOnce(fa, cut, frames, nullptr, nullptr));
    }
    r.disabled_s = best(off);
    r.enabled_s = best(on);
    r.aa_s = best(aa);
    return r;
}

// ---------------------------------------------------------------------
// 1k-camera DES sweep: events/s with every camera traced
// ---------------------------------------------------------------------

struct DesResult
{
    int cameras = 0;
    double disabled_s = 0.0;
    double enabled_s = 0.0;
    int64_t events = 0;       ///< trace events recorded (enabled run)
    int64_t rec_dropped = 0;
    int64_t delivered = 0;

    double
    overhead() const
    {
        return enabled_s / disabled_s - 1.0;
    }

    double
    eventsPerSec() const
    {
        return static_cast<double>(events) / enabled_s;
    }

    bool
    pass() const
    {
        return overhead() <= kMaxDesOverhead && rec_dropped == 0;
    }
};

double
runDesOnce(const Pipeline &pipe, int n_cams, int64_t frames,
           obs::TraceRecorder *rec, int64_t *delivered)
{
    FleetOptions fopts;
    fopts.gating = GatingMode::Model;
    fopts.pace_stages = false;
    fopts.pace_link = false;
    fopts.trace_fps = 30.0;
    fopts.epoch_capacity = 4; // never reconfigures; keep 1k light
    CameraFleet fleet(radioLink("shared", 1e9, 1.0), fopts);
    for (int i = 0; i < n_cams; ++i) {
        FleetCamera cam("cam" + std::to_string(i), pipe,
                        PipelineConfig::full(pipe, Impl::Asic,
                                             i % 2 == 0 ? 0 : 2));
        cam.frames = frames;
        fleet.addCamera(std::move(cam));
    }
    RunOptions ro;
    ro.mode = ExecutionMode::DiscreteEvent;
    ro.obs.recorder = rec;
    const double t0 = wallNow();
    const FleetRunReport rep = fleet.run(ro);
    const double dt = wallNow() - t0;
    if (delivered != nullptr) {
        *delivered = rep.ledger.delivered;
    }
    return dt;
}

DesResult
measureDes(int n_cams, int64_t frames, int repeats)
{
    // The bench_fleet WISPCam swarm rig: the full FA cascade per
    // camera (model gating, per-stage pricing), not a toy one-block
    // chain — the baseline the <= 10% overhead bar is honest against.
    const Pipeline pipe = buildFaPipeline(nominalFaMeasurements());
    DesResult r;
    r.cameras = n_cams;
    // Ring capacity: ~10 events/frame; sized so the sweep never sheds
    // tail events (dropped() is a gate).
    const size_t ring = static_cast<size_t>(n_cams) *
                        static_cast<size_t>(frames) * 12u;
    std::vector<double> off, on;
    // One long-lived recorder, reset() between repeats: the sweep
    // prices steady-state recording (the monitoring-daemon shape),
    // not the one-time page faults of a cold buffer. The untimed
    // warm-up pair faults in the chunks and the engine's heaps.
    obs::TraceRecorder rec(ring);
    runDesOnce(pipe, n_cams, frames, nullptr, nullptr);
    runDesOnce(pipe, n_cams, frames, &rec, nullptr);
    for (int i = 0; i < repeats; ++i) {
        off.push_back(
            runDesOnce(pipe, n_cams, frames, nullptr, nullptr));
        rec.reset();
        on.push_back(
            runDesOnce(pipe, n_cams, frames, &rec, &r.delivered));
        if (i == 0) {
            r.events =
                static_cast<int64_t>(rec.sortedEvents().size());
            r.rec_dropped = rec.dropped();
        }
    }
    r.disabled_s = best(off);
    r.enabled_s = best(on);
    return r;
}

// ---------------------------------------------------------------------
// Demo artifacts: the degrade/heal blackout trace for CI upload
// ---------------------------------------------------------------------

struct DemoResult
{
    size_t trace_bytes = 0;
    bool has_decisions = false;
    bool wrote = false;
};

DemoResult
writeDemoArtifacts()
{
    const Pipeline pipe = offloadablePipeline();
    const double fps = 4.0;
    const int64_t frames = 240;
    FaultPlan plan;
    plan.blackouts = {{Time::seconds(20.0), Time::seconds(20.0)}};
    const FaultInjector inj(plan);
    const NetworkLink link = radioLink("cheap", 1e6, 1.0);

    RuntimeOptions opts;
    opts.frames = frames;
    opts.gating = GatingMode::None;
    opts.pace_stages = false;
    opts.pace_link = false;
    opts.trace_fps = fps;
    opts.delivery.probe_every = 8;
    StreamingPipeline sp(pipe, PipelineConfig::full(pipe, Impl::Asic, 0),
                         link, opts);
    sp.setFaultInjector(&inj);

    ControllerOptions copts;
    copts.goal.kind = OptimizerGoal::Kind::MinEnergy;
    copts.decision_period = 2.0;
    copts.sample_period = 0.5;
    copts.ewma_horizon = Time::seconds(1.0);
    copts.min_dwell = 1;
    copts.trace_fps = fps;
    copts.degrade_loss_threshold = 0.9;
    copts.restore_loss_threshold = 0.2;
    AdaptiveController ctl(pipe, link, copts);
    ctl.useFaultPlan(&plan);
    ctl.attach(sp);

    obs::TraceRecorder rec;
    obs::MetricsRegistry reg;
    obs::ObsConfig ob;
    ob.recorder = &rec;
    ob.registry = &reg;
    ob.frame_time = true;
    sp.setObs(ob, 0, "blackout-demo");
    ctl.setObs(ob);
    sp.run();

    DemoResult res;
    const std::string json = obs::chromeTraceJson(rec);
    res.trace_bytes = json.size();
    res.has_decisions =
        json.find("\"degrade\"") != std::string::npos &&
        json.find("\"heal\"") != std::string::npos &&
        json.find("\"decision\"") != std::string::npos;
    res.wrote = obs::writeChromeTrace(rec, "obs_demo.trace.json") &&
                obs::writeMetricsJsonl(reg.snapshot(),
                                       "obs_demo.metrics.jsonl");
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    banner("observability overhead",
           "per-frame tracing priced on the FA rig and a 1k-camera "
           "DES sweep");
    paperSays("instrumentation is only trustworthy if it does not "
              "perturb the system it measures — the disabled path "
              "must be free, the enabled path cheap");

    const int64_t fa_frames = quick ? 200 : 400;
    const int fa_repeats = quick ? 3 : 5;
    const Pipeline fa = buildFaPipeline(nominalFaMeasurements());

    std::vector<FaCutResult> fa_results;
    std::printf("\nFA paced rig (%lld frames, best of %d):\n",
                static_cast<long long>(fa_frames), fa_repeats);
    std::printf("%-5s %12s %12s %10s %10s %9s\n", "cut", "off [s]",
                "on [s]", "overhead", "A/A", "events");
    bool all_pass = true;
    for (const int cut : {0, 2, 3}) {
        const FaCutResult r =
            measureFaCut(fa, cut, fa_frames, fa_repeats);
        const bool ok = r.pass();
        all_pass = all_pass && ok;
        std::printf("%-5d %12.4f %12.4f %9.1f%% %9.1f%% %9lld%s\n",
                    r.cut, r.disabled_s, r.enabled_s,
                    100.0 * r.overhead(), 100.0 * r.aaSpread(),
                    static_cast<long long>(r.events),
                    ok ? "" : "  <-- GATE FAILED");
        fa_results.push_back(r);
    }

    const int des_cams = 1000;
    const int64_t des_frames = quick ? 40 : 120;
    const DesResult des =
        measureDes(des_cams, des_frames, quick ? 3 : 5);
    const bool des_ok = des.pass();
    all_pass = all_pass && des_ok;
    std::printf("\n%d-camera DES sweep (%lld frames/cam): off %.3f s, "
                "on %.3f s (%.1f%% overhead), %lld events at "
                "%.0f events/s, %lld dropped%s\n",
                des.cameras, static_cast<long long>(des_frames),
                des.disabled_s, des.enabled_s, 100.0 * des.overhead(),
                static_cast<long long>(des.events), des.eventsPerSec(),
                static_cast<long long>(des.rec_dropped),
                des_ok ? "" : "  <-- GATE FAILED");

    const DemoResult demo = writeDemoArtifacts();
    const bool demo_ok = demo.wrote && demo.has_decisions;
    all_pass = all_pass && demo_ok;
    std::printf("\ndemo artifacts: obs_demo.trace.json (%zu bytes, "
                "degrade/heal instants %s) + obs_demo.metrics.jsonl%s\n",
                demo.trace_bytes,
                demo.has_decisions ? "present" : "MISSING",
                demo_ok ? "" : "  <-- GATE FAILED");

    std::printf("\nBENCH_JSON {\"bench\":\"observability\","
                "\"quick\":%s,\"fa\":[",
                quick ? "true" : "false");
    for (size_t i = 0; i < fa_results.size(); ++i) {
        const FaCutResult &r = fa_results[i];
        std::printf("%s{\"cut\":%d,\"disabled_s\":%.4f,"
                    "\"enabled_s\":%.4f,\"overhead\":%.4f,"
                    "\"aa_spread\":%.4f,\"events\":%lld}",
                    i ? "," : "", r.cut, r.disabled_s, r.enabled_s,
                    r.overhead(), r.aaSpread(),
                    static_cast<long long>(r.events));
    }
    std::printf("],\"des\":{\"cameras\":%d,\"frames\":%lld,"
                "\"disabled_s\":%.4f,\"enabled_s\":%.4f,"
                "\"overhead\":%.4f,\"events\":%lld,"
                "\"events_per_sec\":%.0f,\"dropped\":%lld},"
                "\"demo_trace_bytes\":%zu}\n",
                des.cameras, static_cast<long long>(des_frames),
                des.disabled_s, des.enabled_s, des.overhead(),
                static_cast<long long>(des.events), des.eventsPerSec(),
                static_cast<long long>(des.rec_dropped),
                demo.trace_bytes);

    if (!all_pass) {
        std::fprintf(stderr, "\nbench_observability: GATES FAILED\n");
        return 1;
    }
    std::printf("\nall gates passed: enabled tracing within %.0f%% on "
                "the FA rig, within %.0f%% on the DES sweep, disabled "
                "within the %.0f%% noise floor, demo trace written\n",
                100.0 * kMaxEnabledOverhead, 100.0 * kMaxDesOverhead,
                100.0 * kMaxAaSpread);
    return 0;
}
