/**
 * @file
 * The analytical model vs the executing pipeline, cut by cut.
 *
 * For every offload cut of the face-authentication pipeline this
 * harness runs the cut twice through the streaming runtime — once in
 * throughput semantics (no gating, saturated source) and once in
 * energy semantics (deterministic pass-fraction gating, pacing off) —
 * and holds the measured FPS and J/frame against the closed-form
 * ThroughputReport / EnergyReport for the same configuration. A VR-rig
 * spot check (first and last cut, time-compressed) covers the second
 * case study. Ends with one machine-readable JSON line so
 * BENCH_*.json files can track model fidelity across PRs.
 *
 *   bench_runtime_vs_model [--quick]
 *
 * Exits non-zero if any cut's measured throughput strays more than
 * 15% from the prediction (the acceptance bar) or any cut's energy
 * strays more than 3% — model fidelity regressions fail loudly.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/network.hh"
#include "core/pipeline.hh"
#include "fa/scenario.hh"
#include "runtime/runtime.hh"
#include "vr/scenario.hh"

using namespace incam;

namespace {

constexpr double kFpsTolerance = 0.15;
constexpr double kEnergyTolerance = 0.03;

struct CutResult
{
    std::string pipeline;
    std::string config;
    int cut = 0;
    double predicted_fps = 0.0;
    double measured_fps = 0.0;
    double predicted_jpf = 0.0; ///< J per source frame (model)
    double measured_jpf = 0.0;  ///< J per source frame (runtime)

    double
    fpsError() const
    {
        return std::abs(measured_fps - predicted_fps) / predicted_fps;
    }

    /** Zero predicted energy (the VR study prices only throughput)
     *  makes relative drift meaningless; such cuts are not gated. */
    bool
    energyGated() const
    {
        return predicted_jpf > 0.0;
    }

    double
    energyError() const
    {
        return energyGated()
                   ? std::abs(measured_jpf - predicted_jpf) /
                         predicted_jpf
                   : 0.0;
    }
};

/** Measure one cut in both semantics against its analytical reports. */
CutResult
measureCut(const char *pipeline_name, const Pipeline &pipe,
           const PipelineConfig &cfg, const NetworkLink &link,
           int64_t frames, double time_scale)
{
    const PipelineEvaluator eval(pipe, link);
    CutResult r;
    r.pipeline = pipeline_name;
    r.config = cfg.toString(pipe);
    r.cut = cfg.cut;
    r.predicted_fps = eval.evaluateThroughput(cfg).total_fps;
    r.predicted_jpf = eval.evaluateEnergy(cfg).total().j();

    RuntimeOptions fps_opts;
    fps_opts.frames = frames;
    fps_opts.gating = GatingMode::None; // throughput semantics
    fps_opts.time_scale = time_scale;
    StreamingPipeline fps_run(pipe, cfg, link, fps_opts);
    r.measured_fps = fps_run.run().model_fps;

    RuntimeOptions e_opts;
    e_opts.frames = frames;
    e_opts.gating = GatingMode::Model; // energy semantics
    e_opts.pace_stages = false;
    e_opts.pace_link = false;
    StreamingPipeline e_run(pipe, cfg, link, e_opts);
    r.measured_jpf = e_run.run().joules_per_frame.j();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }

    banner("runtime vs model",
           "streaming execution held against the analytical reports");
    std::printf("mode: %s\n\n", quick ? "quick (CI smoke)" : "full");

    // A multiple of 200 keeps every FA duty product (0.3, 0.3 x 0.05)
    // integral, so deterministic gating reproduces the analytical duty
    // exactly instead of flooring the last fractional frame away.
    const int64_t frames = quick ? 200 : 600;
    std::vector<CutResult> results;

    // Every cut of the FA pipeline over Wi-Fi (the acceptance sweep).
    const Pipeline fa = buildFaPipeline(nominalFaMeasurements());
    for (int cut = 0; cut <= fa.blockCount(); ++cut) {
        results.push_back(measureCut(
            "face-auth", fa, PipelineConfig::full(fa, Impl::Asic, cut),
            wifiUplink(), frames, /*time_scale=*/1.0));
    }

    // VR spot check: all-offload and all-local, compressed 5x in time
    // so the tens-of-FPS rig measures in about a second.
    const Pipeline vr = buildVrPipeline(VrPipelineModel{});
    for (int cut : {0, vr.blockCount()}) {
        results.push_back(measureCut(
            "vr-rig", vr, PipelineConfig::full(vr, Impl::Fpga, cut),
            twentyFiveGbE(), quick ? 40 : 100, /*time_scale=*/0.2));
    }

    std::printf("%-10s %-28s %11s %11s %7s %11s %11s %7s\n", "pipeline",
                "config", "pred FPS", "meas FPS", "err", "pred J/f",
                "meas J/f", "err");
    bool within = true;
    for (const auto &r : results) {
        const bool cut_ok = r.fpsError() <= kFpsTolerance &&
                            r.energyError() <= kEnergyTolerance;
        within = within && cut_ok;
        char energy_err[16];
        if (r.energyGated()) {
            std::snprintf(energy_err, sizeof energy_err, "%6.1f%%",
                          100.0 * r.energyError());
        } else {
            std::snprintf(energy_err, sizeof energy_err, "%7s", "n/a");
        }
        std::printf("%-10s %-28s %11.1f %11.1f %6.1f%% %11.3e %11.3e "
                    "%s%s\n",
                    r.pipeline.c_str(), r.config.c_str(),
                    r.predicted_fps, r.measured_fps,
                    100.0 * r.fpsError(), r.predicted_jpf,
                    r.measured_jpf, energy_err,
                    cut_ok ? "" : "  <-- OUT OF TOLERANCE");
    }

    // One-line JSON for BENCH_*.json trajectory tracking.
    std::printf("\nBENCH_JSON {\"bench\":\"runtime_vs_model\","
                "\"quick\":%s,\"frames\":%lld,\"results\":[",
                quick ? "true" : "false",
                static_cast<long long>(frames));
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::printf("%s{\"pipeline\":\"%s\",\"cut\":%d,"
                    "\"predicted_fps\":%.3f,\"measured_fps\":%.3f,"
                    "\"fps_err\":%.4f,\"predicted_jpf\":%.6e,"
                    "\"measured_jpf\":%.6e,\"energy_err\":%.4f,"
                    "\"energy_gated\":%s}",
                    i ? "," : "", r.pipeline.c_str(), r.cut,
                    r.predicted_fps, r.measured_fps, r.fpsError(),
                    r.predicted_jpf, r.measured_jpf, r.energyError(),
                    r.energyGated() ? "true" : "false");
    }
    std::printf("]}\n");

    if (!within) {
        std::fprintf(stderr,
                     "FAIL: at least one cut strayed beyond %.0f%% FPS "
                     "/ %.0f%% energy tolerance\n",
                     100.0 * kFpsTolerance, 100.0 * kEnergyTolerance);
        return 1;
    }
    return 0;
}
