/**
 * @file
 * Ablation — BSSA solver knobs and the real-time frontier.
 *
 * The paper fixes the bilateral-space solver's configuration and
 * reports one FPGA design point. This bench sweeps the knobs that
 * trade depth quality against compute-unit work:
 *
 *  - solver iterations: each costs vertices x 3 vertex-visits on the
 *    FPGA; where is the quality knee, and which iteration counts keep
 *    the 11-CU Zynq above 30 FPS?
 *  - data-fidelity weight (lambda): the smooth-vs-faithful balance;
 *  - matching window radius: cost-volume quality vs B3's CPU share.
 */

#include <cmath>

#include "bench_common.hh"
#include "bilateral/stereo.hh"
#include "common/table.hh"
#include "hw/fpga.hh"
#include "image/metrics.hh"
#include "vr/geometry.hh"
#include "workload/stereo_scene.hh"

using namespace incam;

namespace {

double
depthError(const BssaResult &res, const StereoPair &scene)
{
    double err = 0.0;
    int n = 0;
    for (int y = 4; y < res.disparity.height() - 4; ++y) {
        for (int x = 20; x < res.disparity.width() - 4; ++x) {
            err += std::fabs(res.disparity.at(x, y) -
                             scene.disparity.at(x, y));
            ++n;
        }
    }
    return err / n;
}

} // namespace

int
main()
{
    banner("Ablation", "BSSA solver knobs vs the 30 FPS frontier");
    paperSays("the paper reports one solver configuration; these sweeps "
              "map the space around it");

    StereoSceneConfig sc;
    sc.width = 256;
    sc.height = 192;
    sc.max_disparity = 14;
    sc.layers = 5;
    sc.noise = 0.05; // noisy enough that refinement has something to fix
    sc.seed = 77;
    const StereoPair scene = makeStereoPair(sc);

    // FPGA throughput at the full-scale geometry: visits available per
    // frame on the 11-CU Zynq board.
    const VrGeometry geom = defaultVrGeometry();
    const FpgaDesignModel board(zynq7020(), 2);
    const double visits_per_sec =
        board.verticesPerSecond(board.maxComputeUnits());
    const double full_vertices =
        static_cast<double>(geom.gridVerticesPerPair());

    // --- 1. solver iterations -------------------------------------------
    {
        TableWriter table({"iterations", "depth MAE (px)",
                           "FPGA FPS (full scale)", ">=30?"});
        for (int iters : {2, 6, 13, 26, 52, 104}) {
            BssaConfig cfg;
            cfg.max_disparity = 16;
            cfg.solver_iterations = iters;
            const BssaResult res =
                BssaStereo(cfg).compute(scene.left, scene.right);
            const double fps =
                visits_per_sec / (full_vertices * 3.0 * iters);
            table.addRow({TableWriter::num(iters),
                          TableWriter::num(depthError(res, scene), 3),
                          TableWriter::num(fps, 1),
                          fps >= 30.0 ? "yes" : "no"});
        }
        table.print("solver iterations: quality vs FPGA throughput");
        std::printf("each round buys smoothing and costs throughput; the "
                    "real-time boundary on 11 compute units falls right "
                    "at the paper-calibrated 26 iterations.\n");
    }

    // --- 2. data-fidelity weight ------------------------------------------
    {
        TableWriter table({"lambda", "depth MAE (px)"});
        for (double lambda : {0.0, 0.1, 0.3, 0.6, 1.0, 2.0}) {
            BssaConfig cfg;
            cfg.max_disparity = 16;
            cfg.solver_iterations = 16;
            cfg.data_lambda = lambda;
            const BssaResult res =
                BssaStereo(cfg).compute(scene.left, scene.right);
            table.addRow({TableWriter::num(lambda, 2),
                          TableWriter::num(depthError(res, scene), 3)});
        }
        table.print("data-fidelity weight (smooth <- lambda -> faithful)");
        std::printf("lambda near zero lets diffusion wash out true depth "
                    "structure; the error flattens once the data term "
                    "anchors the solution.\n");
    }

    // --- 3. matching window radius ------------------------------------------
    {
        TableWriter table({"radius", "taps", "depth MAE (px)",
                           "matching Gops (full rig)"});
        for (int radius : {0, 1, 2, 3}) {
            BssaConfig cfg;
            cfg.max_disparity = 16;
            cfg.block_radius = radius;
            cfg.solver_iterations = 16;
            const BssaResult res =
                BssaStereo(cfg).compute(scene.left, scene.right);
            VrGeometry g = geom;
            g.block_radius = radius;
            // matching share of opsDepth at full scale:
            const double rect_px =
                static_cast<double>(g.rect_w) * g.rect_h;
            const double taps =
                (2.0 * radius + 1) * (2.0 * radius + 1);
            const double gops = rect_px * (g.max_disparity + 1) * taps *
                                3.0 * g.pairs() / 1e9;
            table.addRow({TableWriter::num(radius),
                          TableWriter::num(static_cast<int>(taps)),
                          TableWriter::num(depthError(res, scene), 3),
                          TableWriter::num(gops, 2)});
        }
        table.print("SAD window radius: match quality vs matcher cost");
        std::printf("the bilateral-space solver absorbs most matching "
                    "noise, so the paper-style small window (r=1) is "
                    "enough — a key reason BSSA is cheap.\n");
    }
    return 0;
}
