/**
 * @file
 * E1 — Section III-A "NN algorithmic tradeoffs".
 *
 * Sweeps the authentication network's input window (5x5 .. 20x20) and
 * hidden width, training each topology on the LFW-substitute dataset
 * and costing one inference on the 8-PE / 8-bit SNNAP accelerator.
 * The paper's findings to reproduce in shape:
 *   - small input windows are cheap but inaccurate; 20x20 preserves
 *     detail and classifies well (error ~5.9% on their data);
 *   - halving classification error costs about an order of magnitude
 *     in energy across the topology space;
 *   - 400-8-1 is the selected accuracy/energy compromise.
 */

#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "fa/auth.hh"
#include "snnap/accelerator.hh"
#include "snnap/energy.hh"

using namespace incam;

namespace {

struct Point
{
    int input_side;
    int hidden;
};

} // namespace

int
main()
{
    banner("E1 (Section III-A text)", "NN topology accuracy/energy sweep");
    paperSays("20x20 inputs needed for accuracy; halving error costs "
              "~10x energy; 400-8-1 chosen (5.9% error on LFW)");

    const std::vector<Point> points = {
        {5, 8},  {8, 8},  {12, 8}, {16, 8}, {20, 2},
        {20, 4}, {20, 8}, {20, 16}, {20, 32},
    };

    TableWriter table({"topology", "input", "hidden", "test err %",
                       "miss %", "F1", "E/inf (nJ)", "cycles",
                       "err x E (nJ)"});

    for (const Point &pt : points) {
        FaceDatasetConfig dc;
        dc.identities = 30;
        dc.per_identity = 24;
        dc.size = pt.input_side;
        dc.hard = true;
        dc.seed = 7;
        const FaceDataset ds = FaceDataset::generate(dc);

        const MlpTopology topo{
            {pt.input_side * pt.input_side, pt.hidden, 1}};
        TrainConfig tc;
        tc.epochs = 150;
        const AuthNet auth = trainAuthNet(ds, 0, topo, tc);

        QuantConfig qc;
        qc.width = 8;
        const QuantizedMlp qnet(auth.net, qc);
        SnnapConfig sc;
        sc.num_pes = 8;
        SnnapAccelerator accel(qnet, sc);
        std::vector<int64_t> zeros(
            static_cast<size_t>(topo.inputs()), 0);
        accel.runRaw(zeros);
        const SnnapEnergyModel em({}, sc, qc.width);
        const Energy e = em.energy(accel.lastStats());

        table.addRow({topo.toString(), TableWriter::num(pt.input_side),
                      TableWriter::num(pt.hidden),
                      TableWriter::num(100.0 * auth.test_error, 2),
                      TableWriter::num(
                          100.0 * auth.test_confusion.missRate(), 1),
                      TableWriter::num(auth.test_confusion.f1(), 3),
                      TableWriter::num(e.nj(), 2),
                      TableWriter::num(static_cast<long long>(
                          accel.lastStats().total_cycles)),
                      TableWriter::num(100.0 * auth.test_error * e.nj(),
                                       2)});
    }
    table.print("NN topology sweep (8-bit, 8-PE accelerator)");
    std::printf("\nselected operating point: 400-8-1 (the paper's "
                "accuracy/energy compromise)\n");
    return 0;
}
