/**
 * @file
 * E9 — Table I: "Requirements for FPGA acceleration platform".
 *
 * Regenerates the resource-utilization table for the evaluation system
 * (Zynq-7000, one FPGA per two cameras) and the projected target
 * (Virtex UltraScale+ class, 16 cameras). Paper reference:
 *   evaluation: logic 45.91%, RAM 6.70%, DSP 94.09%, 125 MHz;
 *   target:     logic 67.10%, RAM 17.60%, DSP 99.98%, 125 MHz;
 * and the text's "up to 682 compute units" on the target part.
 */

#include "bench_common.hh"
#include "common/table.hh"
#include "hw/fpga.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

int
main()
{
    banner("E9 (Table I)", "FPGA platform requirements");
    paperSays("eval: 45.91/6.70/94.09%; target: 67.10/17.60/99.98%; "
              "682 CUs on the target part");

    const VrPipelineModel model;
    const FpgaUsage eval = model.evaluationUsage();
    const FpgaUsage target = model.targetUsage();

    TableWriter table({"resource", "evaluation", "paper", "target",
                       "paper "});
    table.addRow({"System FPGA model", zynq7020().name, "Zynq-7000",
                  virtexUltraScalePlus().name, "Virtex UltraScale+"});
    table.addRow({"FPGA (#)", "1", "1", "16", "16"});
    table.addRow({"Cameras", "2", "2", "16", "16"});
    table.addRow({"Compute units", TableWriter::num(eval.compute_units),
                  "(12 max)", TableWriter::num(target.compute_units),
                  "682"});
    table.addRow({"Logic %", TableWriter::num(eval.logic_pct, 2),
                  "45.91", TableWriter::num(target.logic_pct, 2),
                  "67.10"});
    table.addRow({"RAM %", TableWriter::num(eval.ram_pct, 2), "6.70",
                  TableWriter::num(target.ram_pct, 2), "17.60"});
    table.addRow({"DSP %", TableWriter::num(eval.dsp_pct, 2), "94.09",
                  TableWriter::num(target.dsp_pct, 2), "99.98"});
    table.addRow({"Clock (MHz)", "125", "125", "125", "125"});
    table.print("Table I: resource requirements per platform");

    std::printf("\neach compute unit: %d DSP slices (Section IV-B), one "
                "grid-vertex filter per cycle;\nB3 throughput per "
                "camera-pair board: %.1f FPS.\n",
                FpgaDesignModel::dsps_per_cu, model.fpgaDepthFps());
    return 0;
}
