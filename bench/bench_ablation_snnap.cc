/**
 * @file
 * Ablation — SNNAP design knobs beyond the paper's sweeps.
 *
 * The paper fixes several microarchitectural choices without showing
 * their sensitivity; this bench sweeps them so the design space around
 * the published operating point is visible:
 *
 *  - sigmoid LUT size (the paper picked 256 entries);
 *  - accumulator width (the paper's datapath carries 26-bit sums);
 *  - bus width (operands per cycle into the PE array);
 *  - accelerator clock (leakage/latency balance at fixed work).
 */

#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "fa/auth.hh"
#include "nn/eval.hh"
#include "snnap/accelerator.hh"
#include "snnap/energy.hh"

using namespace incam;

int
main()
{
    banner("Ablation", "SNNAP accelerator design knobs");
    paperSays("fixed in the paper: 256-entry LUT, 26-bit accumulators, "
              "30 MHz — here swept");

    FaceDatasetConfig dc;
    dc.identities = 24;
    dc.per_identity = 20;
    dc.size = 20;
    dc.seed = 7;
    const FaceDataset ds = FaceDataset::generate(dc);
    TrainConfig tc;
    tc.epochs = 120;
    const AuthNet auth = trainAuthNet(ds, 0, MlpTopology{{400, 8, 1}}, tc);
    FaceDataset train_ds, test_ds;
    ds.split(0.9, train_ds, test_ds);
    const TrainSet test_set = buildAuthSet(test_ds, 0);
    const double float_acc =
        evaluateBinary(predictorOf(auth.net), test_set).accuracy();

    // --- 1. LUT size ---------------------------------------------------
    {
        TableWriter table({"LUT entries", "accuracy %", "loss (pp)",
                           "LUT bytes"});
        for (int entries : {16, 32, 64, 128, 256, 1024}) {
            QuantConfig qc;
            qc.width = 8;
            qc.lut_entries = entries;
            const QuantizedMlp q(auth.net, qc);
            const double acc =
                evaluateBinary(predictorOf(q), test_set).accuracy();
            table.addRow({TableWriter::num(entries),
                          TableWriter::num(100.0 * acc, 2),
                          TableWriter::num(100.0 * (float_acc - acc), 2),
                          TableWriter::num(entries)}); // 8-bit entries
        }
        table.print("sigmoid LUT size (8-bit datapath)");
        std::printf("the paper's 256 entries sit on the flat part of the "
                    "curve; much smaller LUTs stay usable because the "
                    "sigmoid is locally linear.\n");
    }

    // --- 2. accumulator width -------------------------------------------
    {
        TableWriter table({"acc bits", "accuracy %", "loss (pp)"});
        for (int bits : {12, 14, 16, 20, 26, 32}) {
            QuantConfig qc;
            qc.width = 8;
            qc.acc_bits = bits;
            const QuantizedMlp q(auth.net, qc);
            const double acc =
                evaluateBinary(predictorOf(q), test_set).accuracy();
            table.addRow({TableWriter::num(bits),
                          TableWriter::num(100.0 * acc, 2),
                          TableWriter::num(100.0 * (float_acc - acc), 2)});
        }
        table.print("accumulator width (8-bit operands, saturating)");
        std::printf("narrow accumulators saturate the 400-input dot "
                    "products; the paper's 26 bits are comfortably safe.\n");
    }

    // --- 3. bus width -----------------------------------------------------
    {
        QuantConfig qc;
        qc.width = 8;
        const QuantizedMlp q(auth.net, qc);
        TableWriter table({"bus ops/cycle", "DMA cycles", "total cycles",
                           "E/inf (nJ)"});
        for (int bus : {1, 2, 4, 8, 16}) {
            SnnapConfig sc;
            sc.num_pes = 8;
            sc.bus_operands_per_cycle = bus;
            SnnapAccelerator accel(q, sc);
            std::vector<int64_t> zeros(400, 0);
            accel.runRaw(zeros);
            const SnnapEnergyModel em({}, sc, 8);
            table.addRow(
                {TableWriter::num(bus),
                 TableWriter::num(static_cast<long long>(
                     accel.lastStats().dma_cycles)),
                 TableWriter::num(static_cast<long long>(
                     accel.lastStats().total_cycles)),
                 TableWriter::num(em.energy(accel.lastStats()).nj(), 2)});
        }
        table.print("input bus width");
        std::printf("the DMA is ~20%% of cycles at 1 op/cycle and "
                    "vanishes by 4 — the paper's datapath-matched bus is "
                    "the right call.\n");
    }

    // --- 4. clock frequency -----------------------------------------------
    {
        QuantConfig qc;
        qc.width = 8;
        const QuantizedMlp q(auth.net, qc);
        TableWriter table({"clock (MHz)", "t/inf (us)", "E/inf (nJ)",
                           "leakage share %"});
        for (double mhz : {5.0, 15.0, 30.0, 60.0, 120.0}) {
            SnnapConfig sc;
            sc.num_pes = 8;
            sc.clock = Frequency::megahertz(mhz);
            SnnapAccelerator accel(q, sc);
            std::vector<int64_t> zeros(400, 0);
            accel.runRaw(zeros);
            const SnnapEnergyModel em({}, sc, 8);
            const auto br = em.breakdown(accel.lastStats());
            table.addRow(
                {TableWriter::num(mhz, 0),
                 TableWriter::num(
                     accel.lastStats().execTime(sc.clock).usec(), 1),
                 TableWriter::num(br.total().nj(), 2),
                 TableWriter::num(100.0 * br.leakage.j() /
                                      br.total().j(),
                                  1)});
        }
        table.print("clock sweep (dynamic energy fixed, leakage x time)");
        std::printf("slower clocks stretch leakage over longer runs; at "
                    "the paper's 30 MHz leakage is already a rounding "
                    "error for this tiny network.\n");
    }
    return 0;
}
