/**
 * @file
 * Serial-vs-parallel throughput of the four converted hot kernels:
 * bilateral grid (splat + blur + slice), integral-image construction,
 * the Viola-Jones scan, and batched MLP inference.
 *
 * Reports per-kernel wall time at 1 thread and at N threads (default 4,
 * overridable with --threads or INCAM_THREADS) plus the speedup, and
 * ends with one machine-readable JSON line so BENCH_*.json files can
 * track the perf trajectory across PRs.
 *
 *   bench_parallel_kernels [--quick] [--threads N]
 *
 * Every mode verifies that parallel results stay bit-identical to
 * serial and exits non-zero on divergence; speedups are reported but
 * never asserted, since they depend on the host's core count.
 * --quick shrinks the workloads (CI smoke mode).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "bilateral/grid.hh"
#include "common/rng.hh"
#include "exec/parallel.hh"
#include "image/integral.hh"
#include "nn/mlp.hh"
#include "vj/detector.hh"

using namespace incam;

namespace {

double
msNow()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-@p reps wall time of @p fn, in milliseconds. */
template <typename Fn>
double
bestMs(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const double t0 = msNow();
        fn();
        const double t1 = msNow();
        best = std::min(best, t1 - t0);
    }
    return best;
}

struct KernelResult
{
    std::string name;
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    bool identical = true; ///< parallel output bit-identical to serial

    double
    speedup() const
    {
        return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    }
};

bool
imagesIdentical(const ImageF &a, const ImageF &b)
{
    if (!a.sameShape(b)) {
        return false;
    }
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            if (a.at(x, y) != b.at(x, y)) {
                return false;
            }
        }
    }
    return true;
}

ImageF
randomF(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageF img(w, h, 1);
    for (auto &v : img) {
        v = static_cast<float>(rng.uniform());
    }
    return img;
}

ImageU8
randomU8(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h, 1);
    for (auto &v : img) {
        v = static_cast<uint8_t>(rng.below(256));
    }
    return img;
}

/** A permissive two-rect cascade so the scan does real stump work. */
Cascade
benchCascade()
{
    HaarFeature f;
    f.kind = HaarFeature::Kind::Edge2H;
    f.n_rects = 2;
    f.rects[0] = {0, 0, 10, 20, 1};
    f.rects[1] = {10, 0, 10, 20, -1};

    Stump stump;
    stump.feature = 0;
    stump.threshold = 0.0;
    stump.polarity = 1;
    stump.alpha = 1.0;

    CascadeStage stage;
    stage.stumps.push_back(stump);
    stage.threshold = 0.5;
    return Cascade(20, {f}, {stage});
}

KernelResult
benchBilateralGrid(int w, int h, int reps, const ExecPolicy &par)
{
    const ImageF img = randomF(w, h, 11);
    auto run = [&](const ExecPolicy &pol) {
        BilateralGrid g(w, h, 8.0, 12);
        g.splat(img, img, nullptr, nullptr, pol);
        g.blur(nullptr, pol);
        return g.slice(img, 0.0f, nullptr, pol);
    };
    KernelResult r{"bilateral_grid"};
    r.serial_ms = bestMs(reps, [&] { run(ExecPolicy::serial()); });
    r.parallel_ms = bestMs(reps, [&] { run(par); });
    r.identical = imagesIdentical(run(ExecPolicy::serial()), run(par));
    return r;
}

KernelResult
benchIntegralImage(int w, int h, int reps, const ExecPolicy &par)
{
    const ImageU8 img = randomU8(w, h, 22);
    KernelResult r{"integral_image"};
    r.serial_ms = bestMs(reps, [&] {
        const IntegralImage ii(img);
        (void)ii.rectSum(0, 0, w, h);
    });
    r.parallel_ms = bestMs(reps, [&] {
        const IntegralImage ii(img, par);
        (void)ii.rectSum(0, 0, w, h);
    });
    const IntegralImage serial(img);
    const IntegralImage threaded(img, par);
    Rng rects(55);
    for (int i = 0; i < 200 && r.identical; ++i) {
        const int x = static_cast<int>(rects.below(w));
        const int y = static_cast<int>(rects.below(h));
        const int rw = 1 + static_cast<int>(rects.below(w - x));
        const int rh = 1 + static_cast<int>(rects.below(h - y));
        r.identical = serial.rectSum(x, y, rw, rh) ==
                          threaded.rectSum(x, y, rw, rh) &&
                      serial.rectSumSq(x, y, rw, rh) ==
                          threaded.rectSumSq(x, y, rw, rh);
    }
    return r;
}

KernelResult
benchDetector(int w, int h, int reps, const ExecPolicy &par)
{
    const Cascade cascade = benchCascade();
    const ImageU8 img = randomU8(w, h, 33);
    auto run = [&](const ExecPolicy &pol) {
        DetectorParams p;
        p.adaptive_step = false;
        p.static_step = 2;
        p.scale_factor = 1.25;
        p.exec = pol;
        const Detector d(cascade, p);
        return d.rawHits(img);
    };
    KernelResult r{"vj_scan"};
    r.serial_ms = bestMs(reps, [&] { run(ExecPolicy::serial()); });
    r.parallel_ms = bestMs(reps, [&] { run(par); });
    r.identical = run(ExecPolicy::serial()) == run(par);
    return r;
}

KernelResult
benchNnForward(int batch, int reps, const ExecPolicy &par)
{
    const Mlp net(MlpTopology{{400, 64, 16, 1}}, 7);
    Rng rng(44);
    std::vector<std::vector<float>> inputs;
    for (int i = 0; i < batch; ++i) {
        std::vector<float> in(400);
        for (auto &v : in) {
            v = static_cast<float>(rng.uniform());
        }
        inputs.push_back(std::move(in));
    }
    KernelResult r{"nn_forward"};
    r.serial_ms = bestMs(
        reps, [&] { net.forwardBatch(inputs, ExecPolicy::serial()); });
    r.parallel_ms = bestMs(reps, [&] { net.forwardBatch(inputs, par); });
    r.identical = net.forwardBatch(inputs, ExecPolicy::serial()) ==
                  net.forwardBatch(inputs, par);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int threads = 4;
    if (const char *env = std::getenv("INCAM_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0) {
            threads = n;
        }
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--threads N]\n", argv[0]);
            return 2;
        }
    }
    const ExecPolicy par{threads, 1};

    banner("parallel kernels",
           "serial vs " + std::to_string(threads) +
               "-thread throughput of the converted hot loops");
    std::printf("mode: %s\n\n", quick ? "quick (CI smoke)" : "full");

    const int scale = quick ? 1 : 4;
    const int reps = quick ? 1 : 3;
    std::vector<KernelResult> results;
    results.push_back(
        benchBilateralGrid(160 * scale, 120 * scale, reps, par));
    results.push_back(
        benchIntegralImage(320 * scale, 240 * scale, reps, par));
    results.push_back(benchDetector(160 * scale, 120 * scale, reps, par));
    results.push_back(benchNnForward(64 * scale, reps, par));

    std::printf("%-16s %12s %12s %10s %12s\n", "kernel", "serial (ms)",
                "parallel (ms)", "speedup", "identical");
    bool all_identical = true;
    for (const auto &r : results) {
        std::printf("%-16s %12.3f %12.3f %9.2fx %12s\n", r.name.c_str(),
                    r.serial_ms, r.parallel_ms, r.speedup(),
                    r.identical ? "yes" : "MISMATCH");
        all_identical = all_identical && r.identical;
    }

    // One-line JSON for BENCH_*.json trajectory tracking.
    std::printf("\nBENCH_JSON {\"bench\":\"parallel_kernels\","
                "\"threads\":%d,\"quick\":%s,\"results\":[",
                threads, quick ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::printf("%s{\"kernel\":\"%s\",\"serial_ms\":%.3f,"
                    "\"parallel_ms\":%.3f,\"speedup\":%.3f,"
                    "\"identical\":%s}",
                    i ? "," : "", r.name.c_str(), r.serial_ms,
                    r.parallel_ms, r.speedup(),
                    r.identical ? "true" : "false");
    }
    std::printf("]}\n");

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: parallel output diverged from "
                             "serial on at least one kernel\n");
        return 1;
    }
    return 0;
}
