/**
 * @file
 * Adaptive offload under time-varying links: best-static vs oracle vs
 * the online controller.
 *
 * The paper fixes the link and asks where to cut the pipeline; this
 * harness varies the link (and the scene) over trace/ schedules and
 * asks the question the adaptive layer exists to answer — how much of
 * the per-segment-optimal ("oracle") cost can an online controller
 * that only sees estimated conditions actually capture, and how far
 * ahead of the best *static* configuration does it land?
 *
 * Rigs and traces:
 *
 *  - An MCU-class FA camera (ASIC motion gate, software face detect
 *    and authentication — a WISPCam-style deployment whose heavy
 *    blocks have no accelerator) under MinEnergy, swept over a
 *    Gilbert-Elliott fading Wi-Fi link with scene content bridged
 *    from the security-video ground truth, an RF-harvest duty-cycled
 *    backscatter link, and a stationary Wi-Fi control.
 *  - The Fig. 9 VR rig under MaxThroughput on a trunk stepping
 *    between 100 GbE-class off-peak capacity and 25 GbE-class peak
 *    congestion — the Section IV-C sensitivity axis made dynamic
 *    (above ~50 Gb/s raw offload beats the full-FPGA chain; below,
 *    the in-camera pipeline wins).
 *
 * For every scenario three answers are produced:
 *
 *   best-static — the best single configuration over the whole trace
 *                 (what a stationary planner ships);
 *   oracle      — per-segment re-optimization with perfect knowledge
 *                 (the analytical upper bound);
 *   adaptive    — the real StreamingPipeline with an attached
 *                 AdaptiveController and DynamicLink (measured).
 *
 * Energy scenarios run the deterministic counting shape on the frame
 * clock; the VR scenario runs paced against the wall trace clock with
 * time_scale compression. Gates — the bar this subsystem must hold:
 *
 *   - adaptive within 10% of oracle on both energy J/frame and FPS in
 *     every scenario;
 *   - adaptive strictly better than best-static on the goal metric on
 *     every non-stationary trace;
 *   - every run lossless: frames out (delivered + gated) == frames in.
 *
 *   bench_adaptive [--quick]
 *
 * Ends with one BENCH_JSON line for trajectory tracking; exits
 * non-zero if any gate fails.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adapt/controller.hh"
#include "bench_common.hh"
#include "core/network.hh"
#include "core/optimizer.hh"
#include "fa/scenario.hh"
#include "runtime/runtime.hh"
#include "trace/dynamic_link.hh"
#include "trace/trace.hh"
#include "vr/pipeline_model.hh"
#include "vr/scenario.hh"
#include "workload/video.hh"

using namespace incam;

namespace {

constexpr double kOracleTolerance = 0.10; ///< adaptive vs oracle

/**
 * The MCU-class FA camera: the motion gate is the only accelerated
 * block; face detection and authentication run in software on the
 * node's microcontroller at software costs. This is the deployment
 * where offloading right after the gate is genuinely competitive —
 * the in-camera path costs ~1.5 mJ per gated frame while the gated
 * raw stream costs 153 kbit x e/bit, so the optimal cut tracks the
 * radio's per-bit price.
 */
Pipeline
mcuFaPipeline()
{
    const FaMeasurements m = nominalFaMeasurements();
    Pipeline pipe("fa-mcu", m.frame_bytes);

    Block motion("MotionGate", /*optional=*/true, m.frame_bytes);
    motion.setPassFraction(m.motion_pass);
    motion.addImpl(Impl::Asic,
                   {Time::microseconds(640), m.motion_per_frame});
    pipe.add(motion);

    Block detect("FaceDetect", /*optional=*/true, m.crop_bytes);
    detect.setPassFraction(m.vj_pass);
    detect.addImpl(Impl::Mcu,
                   {Time::milliseconds(80), Energy::microjoules(1500)});
    pipe.add(detect);

    // Blind-scan pricing, as in fa/scenario.hh: the NN's per-frame
    // cost is the full-frame software scan; FaceDetect's pass
    // fraction is the work ratio a crop buys. 300 ms at ~20 mW.
    Block auth("FaceAuth", /*optional=*/false, DataSize::bytes(1));
    auth.addImpl(Impl::Mcu,
                 {Time::milliseconds(300), Energy::millijoules(6.0)});
    pipe.add(auth);
    return pipe;
}

/**
 * J per source frame under *runtime* semantics: the analytical FA
 * convention rounds the fully-in-camera upload (a 1-byte verdict) to
 * zero, but the runtime prices every byte that reaches the uplink —
 * which matters when "fully in camera" still emits a 101 MB stitched
 * product (the VR rig). The bench compares model aggregates against
 * measured runs, so both sides use the runtime's basis.
 */
double
runtimeJpf(const PipelineEvaluator &ev, const PipelineConfig &cfg)
{
    const EnergyReport rep = ev.evaluateEnergy(cfg);
    double j = rep.total().j();
    if (cfg.cut == ev.pipeline().blockCount()) {
        j += ev.link().transferEnergy(rep.cut_bytes).j() * rep.cut_duty;
    }
    return j;
}

/** One scenario's world: a link schedule plus optional scene content. */
struct Conditions
{
    const NetworkTrace *net = nullptr;
    const ContentTrace *content = nullptr;
    double horizon = 0.0; ///< evaluation window, model seconds
};

/** The planning pipeline in force at trace time t. */
Pipeline
pipelineAt(const Pipeline &base, const Conditions &c, double t)
{
    if (c.content == nullptr) {
        return base;
    }
    const ContentSegment &cs = c.content->at(Time::seconds(t));
    return withPassFractions(base, cs.motion_pass, cs.face_pass);
}

/** Sorted piece boundaries: trace segments, content windows, extras. */
std::vector<double>
pieceBoundaries(const Conditions &c, const std::vector<double> &extra)
{
    std::vector<double> b;
    b.push_back(0.0);
    b.push_back(c.horizon);
    const double span = c.net->duration().sec();
    for (double base = 0.0; base < c.horizon; base += span) {
        for (size_t i = 0; i < c.net->segmentCount(); ++i) {
            const double t = base + c.net->segment(i).start.sec();
            if (t < c.horizon) {
                b.push_back(t);
            }
        }
        if (!c.net->periodic()) {
            break;
        }
    }
    if (c.content != nullptr) {
        for (size_t i = 0; i < c.content->segmentCount(); ++i) {
            const double t = c.content->segment(i).start.sec();
            if (t < c.horizon) {
                b.push_back(t);
            }
        }
    }
    for (double t : extra) {
        if (t > 0.0 && t < c.horizon) {
            b.push_back(t);
        }
    }
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    return b;
}

/** Aggregated cost of a configuration schedule over the trace. */
struct Aggregate
{
    double jpf_j = 0.0; ///< J per source frame
    double fps = 0.0;   ///< deliverable frames per second
};

/**
 * Fold per-piece (jpf, fps) into trace-wide aggregates. Energy is
 * duration-weighted for fixed-rate sources; with
 * @p frame_weighted_energy (saturated sources — the VR shape) each
 * piece weighs by the frames it actually delivers.
 */
class Accumulator
{
  public:
    explicit Accumulator(bool frame_weighted_energy)
        : frame_weighted(frame_weighted_energy)
    {
    }

    void
    add(double dur, double jpf, double fps)
    {
        const double ew = frame_weighted ? dur * fps : dur;
        e_acc += ew * jpf;
        ew_acc += ew;
        f_acc += dur * fps;
        w_acc += dur;
    }

    Aggregate
    result() const
    {
        return {ew_acc > 0.0 ? e_acc / ew_acc : 0.0,
                w_acc > 0.0 ? f_acc / w_acc : 0.0};
    }

  private:
    bool frame_weighted;
    double e_acc = 0.0, ew_acc = 0.0, f_acc = 0.0, w_acc = 0.0;
};

/** One fixed config priced over every piece of the trace. */
Aggregate
aggregateConfig(const Pipeline &base, const Conditions &c,
                const std::vector<double> &bounds,
                const PipelineConfig &cfg, bool frame_weighted_energy)
{
    Accumulator acc(frame_weighted_energy);
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double t0 = bounds[i];
        const Pipeline pipe = pipelineAt(base, c, t0);
        const PipelineEvaluator ev(pipe, c.net->at(Time::seconds(t0)));
        acc.add(bounds[i + 1] - t0, runtimeJpf(ev, cfg),
                ev.evaluateThroughput(cfg).total_fps);
    }
    return acc.result();
}

/** Per-piece re-optimization with perfect knowledge — the bound. */
Aggregate
oracleAggregate(const Pipeline &base, const Conditions &c,
                const std::vector<double> &bounds,
                const OptimizerGoal &goal, bool frame_weighted_energy)
{
    Accumulator acc(frame_weighted_energy);
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double t0 = bounds[i];
        const Pipeline pipe = pipelineAt(base, c, t0);
        const NetworkLink link = c.net->at(Time::seconds(t0));
        const PipelineOptimizer opt(pipe, link);
        const ConfigResult best = opt.best(goal);
        acc.add(bounds[i + 1] - t0,
                runtimeJpf(PipelineEvaluator(pipe, link), best.config),
                best.throughput.total_fps);
    }
    return acc.result();
}

/** The best single configuration over the whole trace. */
std::pair<PipelineConfig, Aggregate>
bestStatic(const Pipeline &base, const Conditions &c,
           const std::vector<double> &bounds, const OptimizerGoal &goal,
           bool frame_weighted_energy)
{
    // Enumerate the structural config space once (the link used here
    // only orders the list; every config is re-priced per piece).
    const PipelineOptimizer opt(base, c.net->averageLink());
    const std::vector<ConfigResult> all = opt.enumerate(goal);
    bool have = false;
    PipelineConfig best_cfg;
    Aggregate best_agg;
    std::string best_str;
    for (const ConfigResult &r : all) {
        const Aggregate agg = aggregateConfig(base, c, bounds, r.config,
                                              frame_weighted_energy);
        const double obj = goal.kind == OptimizerGoal::Kind::MinEnergy
                               ? agg.jpf_j
                               : -agg.fps;
        const double best_obj =
            goal.kind == OptimizerGoal::Kind::MinEnergy ? best_agg.jpf_j
                                                        : -best_agg.fps;
        const std::string str = r.config.toString(base);
        if (!have || obj < best_obj ||
            (obj == best_obj && str < best_str)) {
            have = true;
            best_cfg = r.config;
            best_agg = agg;
            best_str = str;
        }
    }
    return {best_cfg, best_agg};
}

/** The controller's live-config timeline priced over the trace. */
Aggregate
adaptiveImplied(const Pipeline &base, const Conditions &c,
                const PipelineConfig &initial,
                const std::vector<AdaptiveDecision> &decisions,
                bool frame_weighted_energy)
{
    std::vector<std::pair<double, PipelineConfig>> switches;
    std::vector<double> extra;
    for (const AdaptiveDecision &d : decisions) {
        if (d.switched) {
            switches.emplace_back(d.t, d.config);
            extra.push_back(d.t);
        }
    }
    const std::vector<double> bounds = pieceBoundaries(c, extra);

    Accumulator acc(frame_weighted_energy);
    size_t applied = 0;
    PipelineConfig live = initial;
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double t0 = bounds[i];
        while (applied < switches.size() &&
               switches[applied].first <= t0) {
            live = switches[applied].second;
            ++applied;
        }
        const Pipeline pipe = pipelineAt(base, c, t0);
        const PipelineEvaluator ev(pipe, c.net->at(Time::seconds(t0)));
        acc.add(bounds[i + 1] - t0, runtimeJpf(ev, live),
                ev.evaluateThroughput(live).total_fps);
    }
    return acc.result();
}

/** One scenario's outcome and gate verdicts. */
struct ScenarioResult
{
    std::string name;
    bool stationary = false;
    bool energy_goal = true;
    Aggregate oracle, stat, adaptive;
    std::string static_config;
    int64_t switches = 0;
    bool lossless = false;
    double wall_seconds = 0.0;

    double
    oracleGapEnergy() const
    {
        return oracle.jpf_j > 0.0
                   ? adaptive.jpf_j / oracle.jpf_j - 1.0
                   : 0.0;
    }

    double
    oracleGapFps() const
    {
        return oracle.fps > 0.0 ? 1.0 - adaptive.fps / oracle.fps
                                : 0.0;
    }

    /** The goal metric's improvement over the best static config. */
    double
    staticGain() const
    {
        return energy_goal ? 1.0 - adaptive.jpf_j / stat.jpf_j
                           : adaptive.fps / stat.fps - 1.0;
    }

    bool
    pass() const
    {
        if (!lossless) {
            return false;
        }
        if (oracleGapEnergy() > kOracleTolerance ||
            oracleGapFps() > kOracleTolerance) {
            return false;
        }
        return stationary || staticGain() > 0.0;
    }
};

int64_t
totalDropped(const RuntimeReport &rep)
{
    int64_t dropped = 0;
    for (const StageReport &st : rep.stages) {
        dropped += st.frames_dropped;
    }
    return dropped;
}

/** Controller knobs for the deterministic energy scenarios. */
ControllerOptions
energyControllerOptions(double trace_fps)
{
    ControllerOptions c;
    c.goal.kind = OptimizerGoal::Kind::MinEnergy;
    c.decision_period = 0.5;
    c.sample_period = 0.25;
    c.ewma_horizon = Time::seconds(0.3);
    c.hysteresis = 0.05;
    c.min_dwell = 2;
    c.trace_fps = trace_fps;
    return c;
}

/**
 * A MinEnergy scenario: counting run on the frame clock — energy is
 * measured by the runtime (trace-priced per frame); FPS is the
 * decision timeline's model throughput.
 */
ScenarioResult
runEnergyScenario(const std::string &name, const Pipeline &base,
                  const Conditions &c, double source_fps,
                  bool stationary)
{
    OptimizerGoal goal;
    goal.kind = OptimizerGoal::Kind::MinEnergy;
    const std::vector<double> bounds = pieceBoundaries(c, {});

    ScenarioResult res;
    res.name = name;
    res.stationary = stationary;
    res.energy_goal = true;
    res.oracle = oracleAggregate(base, c, bounds, goal, false);
    auto [static_cfg, static_agg] =
        bestStatic(base, c, bounds, goal, false);
    res.stat = static_agg;
    res.static_config = static_cfg.toString(base);

    RuntimeOptions opts;
    opts.frames = static_cast<int64_t>(c.horizon * source_fps);
    opts.gating = GatingMode::Model;
    opts.pace_stages = false;
    opts.pace_link = false;
    opts.trace_fps = source_fps;
    opts.epoch_capacity = 1024;
    StreamingPipeline sp(base, static_cfg, c.net->at(Time{}), opts);
    sp.setContentTrace(c.content);

    DynamicLink::Options dopts;
    dopts.pace = false;
    DynamicLink dyn(*c.net, dopts);
    sp.attachUplinkArbiter(&dyn, 0);

    AdaptiveController ctl(base, c.net->averageLink(),
                           energyControllerOptions(source_fps));
    ctl.useNetworkTrace(c.net);
    ctl.useContentTrace(c.content);
    ctl.attach(sp);

    const auto t0 = std::chrono::steady_clock::now();
    const RuntimeReport rep = sp.run();
    res.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    res.lossless = rep.source_frames == opts.frames &&
                   rep.delivered_frames + totalDropped(rep) ==
                       rep.source_frames;
    res.switches = ctl.switches();
    res.adaptive = adaptiveImplied(base, c, static_cfg,
                                   ctl.decisions(), false);
    // The runtime actually measured the energy; prefer it over the
    // implied number (they must agree — the fidelity the runtime
    // benches already pin — but the measurement is the claim).
    res.adaptive.jpf_j = rep.joules_per_frame.j();
    return res;
}

/**
 * The MaxThroughput VR scenario: paced run, wall trace clock,
 * time_scale-compressed. FPS and energy are both measured.
 */
ScenarioResult
runVrScenario(const std::string &name, const Conditions &c,
              double time_scale, bool stationary)
{
    VrPipelineModel model;
    const Pipeline vr = buildVrPipeline(model);
    OptimizerGoal goal;
    goal.kind = OptimizerGoal::Kind::MaxThroughput;
    const std::vector<double> bounds = pieceBoundaries(c, {});

    ScenarioResult res;
    res.name = name;
    res.stationary = stationary;
    res.energy_goal = false;
    res.oracle = oracleAggregate(vr, c, bounds, goal, true);
    auto [static_cfg, static_agg] =
        bestStatic(vr, c, bounds, goal, true);
    res.stat = static_agg;
    res.static_config = static_cfg.toString(vr);

    RuntimeOptions opts;
    opts.frames = 1 << 20; // duration, not frames, ends the run
    opts.duration = c.horizon;
    opts.gating = GatingMode::None;
    opts.time_scale = time_scale;
    opts.queue_capacity = 4;
    opts.epoch_capacity = 1024;
    StreamingPipeline sp(vr, static_cfg, c.net->at(Time{}), opts);

    DynamicLink::Options dopts;
    dopts.time_scale = time_scale;
    DynamicLink dyn(*c.net, dopts);
    sp.attachUplinkArbiter(&dyn, 0);

    ControllerOptions copts;
    copts.goal = goal;
    copts.decision_period = 1.0;
    copts.sample_period = 0.5;
    copts.ewma_horizon = Time::seconds(0.75);
    copts.hysteresis = 0.05;
    copts.min_dwell = 2;
    copts.trace_fps = 1.0; // unused: the wall trace clock drives
    AdaptiveController ctl(vr, c.net->averageLink(), copts);
    ctl.useNetworkTrace(c.net);
    ctl.useTraceClock([&dyn] { return dyn.traceTime().sec(); });
    ctl.attach(sp);

    const auto t0 = std::chrono::steady_clock::now();
    dyn.start();
    const RuntimeReport rep = sp.run();
    res.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    res.lossless = rep.delivered_frames + totalDropped(rep) ==
                   rep.source_frames;
    res.switches = ctl.switches();
    res.adaptive.fps = rep.model_fps;
    res.adaptive.jpf_j = rep.joules_per_frame.j();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    banner("Adaptive offload under time-varying links",
           "best-static vs per-segment oracle vs online controller");
    paperSays("the optimal compute-communicate cut is a function of "
              "link conditions; under non-stationary links no static "
              "cut stays optimal");

    const Pipeline fa = mcuFaPipeline();
    const double fa_fps = 4.0;
    std::vector<ScenarioResult> results;

    // --- FA / Gilbert-Elliott fading Wi-Fi, video-driven content ----
    {
        const NetworkLink good = wifiUplink();
        NetworkLink bad = good;
        bad.name = "Wi-Fi (faded)";
        bad.bandwidth = good.bandwidth / 8.0;
        bad.energy_per_bit = good.energy_per_bit * 6.0;
        GilbertElliottParams ge;
        ge.p_good_to_bad = 0.15;
        ge.p_bad_to_good = 0.35;
        ge.step = Time::seconds(10.0);
        ge.duration = Time::seconds(quick ? 120.0 : 240.0);
        ge.seed = 5;
        const NetworkTrace trace =
            NetworkTrace::gilbertElliott(good, bad, ge);

        SecurityVideoConfig vc;
        vc.frames = 600;
        vc.seed = 21;
        const SecurityVideo video(vc);
        const ContentTrace content = ContentTrace::fromSecurityVideo(
            video, FrameRate::fps(1.0), 30);

        Conditions c;
        c.net = &trace;
        c.content = &content;
        c.horizon = ge.duration.sec();
        results.push_back(runEnergyScenario("fa-wifi-fading", fa, c,
                                            fa_fps, false));
    }

    // --- FA / RF-harvest duty-cycled backscatter -------------------
    if (!quick) {
        HarvestDutyParams hp;
        hp.distance_m = 1.5;
        hp.capacitor_farads = 10e-3; // supercap: multi-second bursts
        hp.duration = Time::seconds(400.0);
        const NetworkTrace trace =
            NetworkTrace::harvestDutyCycle(backscatterUplink(), hp);
        Conditions c;
        c.net = &trace;
        c.horizon = hp.duration.sec();
        results.push_back(runEnergyScenario("fa-backscatter-harvest",
                                            fa, c, fa_fps, false));
    }

    // --- FA / stationary Wi-Fi control -----------------------------
    {
        const NetworkTrace trace =
            NetworkTrace::stationary(wifiUplink());
        Conditions c;
        c.net = &trace;
        c.horizon = 60.0;
        results.push_back(runEnergyScenario("fa-wifi-stationary", fa,
                                            c, fa_fps, true));
    }

    // --- VR / diurnal trunk congestion steps -----------------------
    {
        // 100 GbE-class off-peak (raw offload wins, ~63 FPS) stepping
        // to 25 GbE-class peak congestion (full-FPGA chain wins, 31).
        const NetworkTrace trace =
            NetworkTrace::steps(twentyFiveGbE(), {4.0, 1.0, 4.0, 1.0},
                                Time::seconds(quick ? 20.0 : 30.0));
        Conditions c;
        c.net = &trace;
        c.horizon = trace.duration().sec();
        results.push_back(runVrScenario("vr-diurnal-congestion", c,
                                        /*time_scale=*/1.0 / 40.0,
                                        false));
    }

    // --- VR / stationary control -----------------------------------
    if (!quick) {
        const NetworkTrace trace =
            NetworkTrace::stationary(twentyFiveGbE());
        Conditions c;
        c.net = &trace;
        c.horizon = 60.0;
        results.push_back(runVrScenario("vr-stationary", c,
                                        1.0 / 40.0, true));
    }

    // ----------------------------- report + gates ------------------
    std::printf("\n%-24s %13s %13s %13s %9s %8s\n", "scenario",
                "static", "oracle", "adaptive", "vs-static", "gap");
    bool all_pass = true;
    for (const ScenarioResult &r : results) {
        const bool ok = r.pass();
        all_pass = all_pass && ok;
        if (r.energy_goal) {
            std::printf("%-24s %11.1fuJ %11.1fuJ %11.1fuJ %8.1f%% "
                        "%6.1f%%%s\n",
                        r.name.c_str(), r.stat.jpf_j * 1e6,
                        r.oracle.jpf_j * 1e6, r.adaptive.jpf_j * 1e6,
                        100.0 * r.staticGain(),
                        100.0 * r.oracleGapEnergy(),
                        ok ? "" : "  <-- GATE FAILED");
        } else {
            std::printf("%-24s %10.1ffps %10.1ffps %10.1ffps %8.1f%% "
                        "%6.1f%%%s\n",
                        r.name.c_str(), r.stat.fps, r.oracle.fps,
                        r.adaptive.fps, 100.0 * r.staticGain(),
                        100.0 * r.oracleGapFps(),
                        ok ? "" : "  <-- GATE FAILED");
        }
        std::printf("    static=%s switches=%lld lossless=%s "
                    "wall=%.2fs\n",
                    r.static_config.c_str(),
                    static_cast<long long>(r.switches),
                    r.lossless ? "yes" : "NO", r.wall_seconds);
    }

    std::printf("\nBENCH_JSON {\"bench\":\"adaptive\",\"quick\":%s,"
                "\"scenarios\":[",
                quick ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::printf(
            "%s{\"name\":\"%s\",\"goal\":\"%s\","
            "\"static_jpf_uj\":%.3f,\"oracle_jpf_uj\":%.3f,"
            "\"adaptive_jpf_uj\":%.3f,\"static_fps\":%.3f,"
            "\"oracle_fps\":%.3f,\"adaptive_fps\":%.3f,"
            "\"static_gain\":%.4f,\"oracle_gap_energy\":%.4f,"
            "\"oracle_gap_fps\":%.4f,\"switches\":%lld,"
            "\"lossless\":%s,\"wall_s\":%.3f}",
            i ? "," : "", r.name.c_str(),
            r.energy_goal ? "min-energy" : "max-fps",
            r.stat.jpf_j * 1e6, r.oracle.jpf_j * 1e6,
            r.adaptive.jpf_j * 1e6, r.stat.fps, r.oracle.fps,
            r.adaptive.fps, r.staticGain(), r.oracleGapEnergy(),
            r.oracleGapFps(), static_cast<long long>(r.switches),
            r.lossless ? "true" : "false", r.wall_seconds);
    }
    std::printf("]}\n");

    if (!all_pass) {
        std::fprintf(stderr, "\nbench_adaptive: GATES FAILED\n");
        return 1;
    }
    std::printf("\nall gates passed: adaptive within %.0f%% of oracle "
                "everywhere, ahead of best-static on every "
                "non-stationary trace\n",
                100.0 * kOracleTolerance);
    return 0;
}
