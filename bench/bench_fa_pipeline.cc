/**
 * @file
 * E5 — the full face-authentication camera evaluation (Section III).
 *
 * Runs the synthetic security video through every pipeline composition
 * — NN alone, motion+NN, motion+VJ+NN — on the accelerator SoC and on
 * the general-purpose microcontroller baseline, plus the "no compute,
 * offload everything" WISPCam-style configuration. Reports the
 * per-stage funnel, the energy ledger, average power at the 1 FPS
 * capture rate, and the frame rate sustainable on harvested RF power.
 *
 * Paper results to reproduce in shape:
 *   - progressive filtering slashes NN work and total energy;
 *   - the accelerator SoC operates sub-mW and far below the MCU;
 *   - raw-image offload over backscatter is the worst option;
 *   - the staged workload yields a ~0% effective miss rate.
 */

#include "bench_common.hh"
#include "common/table.hh"
#include "core/network.hh"
#include "fa/auth.hh"
#include "fa/fa_pipeline.hh"
#include "image/ops.hh"
#include "vj/train.hh"

using namespace incam;

int
main()
{
    banner("E5 (Section III)", "face-authentication camera, end to end");
    paperSays("filtered multi-accelerator pipeline runs sub-mW on "
              "harvested energy and beats a GP microprocessor");

    // --- workload ---
    SecurityVideoConfig vc;
    vc.frames = 240;
    vc.visits = 6;
    vc.enrolled_fraction = 0.5;
    vc.seed = 99;
    const SecurityVideo video(vc);
    std::printf("video: %d frames @1 FPS, %d face frames, %d motion "
                "frames\n",
                video.frameCount(), video.faceFrames(),
                video.motionFrames());

    // --- models ---
    FaceDatasetConfig dc;
    dc.identities = 24;
    dc.per_identity = 20;
    dc.size = 20;
    dc.hard = false;
    dc.framing_jitter = 0.15; // detector boxes are imperfectly registered
    dc.seed = 7;
    TrainConfig nn_tc;
    nn_tc.epochs = 120;
    const AuthNet auth =
        trainAuthNet(FaceDataset::generate(dc), vc.enrolled_identity,
                     MlpTopology{{400, 8, 1}}, nn_tc);
    std::printf("authentication net: 400-8-1, held-out error %.2f%%\n",
                100.0 * auth.test_error);

    Rng rng(31);
    std::vector<ImageU8> positives;
    for (int i = 0; i < 250; ++i) {
        positives.push_back(toU8(renderFace(
            identityParams(rng.below(40)), easyVariation(rng), 20)));
    }
    // Negatives: half synthetic clutter, half windows from the actual
    // deployment background — the bootstrap a real installation would
    // run during commissioning.
    const SecurityVideo *vptr = &video;
    const NegativeSource negatives = [vptr](Rng &r) {
        if (r.chance(0.5)) {
            return toU8(renderDistractor(r.next(), 20));
        }
        const VideoFrame f = vptr->frame(static_cast<int>(r.below(40)));
        const int side = 20 + static_cast<int>(r.below(40));
        const int x = static_cast<int>(r.below(f.image.width() - side));
        const int y = static_cast<int>(r.below(f.image.height() - side));
        return resizeNearest(crop(f.image, Rect{x, y, side, side}), 20,
                             20);
    };
    CascadeTrainConfig ctc;
    ctc.max_features = 700;
    ctc.max_stages = 6;
    ctc.max_stumps_per_stage = 12;
    ctc.negatives_per_stage = 400;
    ctc.seed = 11;
    const Cascade cascade = CascadeTrainer(ctc).train(positives, negatives);

    // --- configurations ---
    struct Row
    {
        const char *name;
        bool md, vj;
        NnPlatform platform;
    };
    const Row rows[] = {
        {"NN only (ASIC)", false, false, NnPlatform::SnnapAsic},
        {"MD + NN (ASIC)", true, false, NnPlatform::SnnapAsic},
        {"MD + VJ + NN (ASIC)", true, true, NnPlatform::SnnapAsic},
        {"NN only (MCU)", false, false, NnPlatform::Mcu},
        {"MD + VJ + NN (MCU)", true, true, NnPlatform::Mcu},
    };

    const RfHarvesterConfig rf;
    const Power harvest3m = harvestedPower(rf, 3.0);

    TableWriter table({"pipeline", "NN infs", "E/frame (uJ)",
                       "P @1FPS (uW)", "FPS @3m harvest",
                       "frame miss %", "visit miss %", "FP %"});

    for (const Row &row : rows) {
        FaConfig cfg;
        cfg.use_motion = row.md;
        cfg.use_facedetect = row.vj;
        cfg.nn_platform = row.platform;
        cfg.detector.min_neighbors = 1;
        cfg.detector.adaptive_step = true;
        cfg.detector.adaptive_frac = 0.1;
        FaCameraSim sim(cfg, row.vj ? &cascade : nullptr, auth.net);
        const FaRunResult res = sim.run(video);
        const double fp_rate =
            100.0 * static_cast<double>(res.auth.fp) /
            std::max<uint64_t>(1, res.auth.fp + res.auth.tn);
        table.addRow(
            {row.name,
             TableWriter::num(
                 static_cast<long long>(res.counts.nn_inferences)),
             TableWriter::num(res.perFrame().uj(), 2),
             TableWriter::num(
                 res.averagePower(FrameRate::fps(1.0)).uw(), 1),
             TableWriter::num(res.sustainableFps(harvest3m), 2),
             TableWriter::num(100.0 * res.auth.missRate(), 1),
             TableWriter::num(100.0 * res.visitMissRate(), 1),
             TableWriter::num(fp_rate, 1)});
    }

    // Offload-raw baseline: capture + backscatter every frame.
    {
        const SensorModel sensor;
        const NetworkLink radio = backscatterUplink();
        const Energy per_frame =
            sensor.captureEnergy(vc.width, vc.height) +
            radio.transferEnergy(
                sensor.frameBytes(vc.width, vc.height));
        table.addRow(
            {"offload raw (WISPCam)", "0",
             TableWriter::num(per_frame.uj(), 2),
             TableWriter::num(per_frame.uj(), 1), // 1 FPS -> uW == uJ/f
             TableWriter::num(harvest3m.w() / per_frame.j(), 2), "-",
             "-", "-"});
    }

    table.print("pipeline compositions on the security-video workload");
    std::printf("\nharvested budget at 3 m: %s\n",
                harvest3m.toString().c_str());
    std::printf("shape checks: energy falls with each added filter; "
                "ASIC << MCU; offload-raw worst.\n");
    return 0;
}
