/**
 * @file
 * Extension — compression as an optional pipeline block (§II).
 *
 * The paper: "While we do not explicitly consider compression in our
 * study, compression can be treated as an optional block in in-camera
 * processing pipelines." This bench does consider it, for both case
 * studies:
 *
 *  1. FA camera: offloading frames over backscatter is hopeless raw
 *     (62 uJ/frame); how much does an in-camera codec close the gap to
 *     local processing?
 *  2. VR rig: the raw sensor stream misses 30 FPS on 25 GbE by 2x.
 *     Does a streaming in-camera codec after B1 rescue the
 *     "offload-early" design, and at what quality?
 *
 * Both questions are answered with the *real* codecs (measured ratios
 * on representative frames), priced through the same hardware models
 * as every other block.
 */

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/network.hh"
#include "hw/device.hh"
#include "hw/energy_model.hh"
#include "hw/sensor.hh"
#include "image/codec.hh"
#include "image/metrics.hh"
#include "image/ops.hh"
#include "vr/pipeline_model.hh"
#include "workload/video.hh"

using namespace incam;

namespace {

void
faCompression()
{
    std::printf("\n-- FA camera: compressed offload over backscatter --\n");
    SecurityVideoConfig vc;
    vc.frames = 40;
    vc.seed = 99;
    const SecurityVideo video(vc);
    const SensorModel sensor;
    const NetworkLink radio = backscatterUplink();
    const AsicEnergyModel asic;

    // Measure codec ratios on real frames.
    Accumulator lossless_ratio, dct_ratio, dct_quality;
    for (int f = 0; f < video.frameCount(); f += 5) {
        const ImageU8 frame = video.frame(f).image;
        lossless_ratio.sample(LosslessCodec::encode(frame).ratio());
        EncodedImage enc;
        const ImageU8 back = DctCodec::roundTrip(frame, 40, &enc);
        dct_ratio.sample(enc.ratio());
        dct_quality.sample(msSsim(toFloat(frame), toFloat(back)));
    }

    const DataSize raw = sensor.frameBytes(vc.width, vc.height);
    const Energy capture = sensor.captureEnergy(vc.width, vc.height);

    TableWriter table({"offload variant", "bytes/frame", "codec E",
                       "radio E", "total E/frame (uJ)", "vs raw"});
    auto addRow = [&](const char *name, double ratio, uint64_t ops) {
        const DataSize bytes = raw / ratio;
        // Codec as a small ASIC block: ALU energy per op.
        const Energy codec_e = asic.alu(16) * static_cast<double>(ops);
        const Energy radio_e = radio.transferEnergy(bytes);
        const Energy total = capture + codec_e + radio_e;
        static double raw_total = 0.0;
        if (ratio == 1.0) {
            raw_total = total.uj();
        }
        table.addRow({name, TableWriter::num(bytes.b(), 0),
                      codec_e.toString(), radio_e.toString(),
                      TableWriter::num(total.uj(), 2),
                      TableWriter::num(raw_total / total.uj(), 2) + "x"});
    };
    addRow("raw frame", 1.0, 0);
    addRow("lossless (Paeth+Rice)", lossless_ratio.mean(),
           static_cast<uint64_t>(vc.width) * vc.height * 6);
    addRow("DCT q40", dct_ratio.mean(),
           static_cast<uint64_t>(vc.width) * vc.height * 33);
    table.print("per-frame offload cost with an in-camera codec");
    std::printf("lossless ratio %.2fx; DCT q40 ratio %.2fx at MS-SSIM "
                "%.1f%%\n",
                lossless_ratio.mean(), dct_ratio.mean(),
                100.0 * dct_quality.mean());
    std::printf("compression narrows offload's gap but local processing "
                "(~1.1 uJ/frame, bench_fa_pipeline) still wins by >10x.\n");
}

void
vrCompression()
{
    std::printf("\n-- VR rig: codec block after B1 on the 25 GbE uplink "
                "--\n");
    const VrPipelineModel model;
    const VrGeometry &g = model.geometry();

    // Representative B1-output content: natural texture (the codec
    // ratio is content-dependent; we measure it, not assume it).
    SecurityVideoConfig vc; // reuse the texture-heavy generator
    vc.width = 384;
    vc.height = 216;
    vc.frames = 4;
    vc.ambient_motion_prob = 0;
    const SecurityVideo proxy(vc);
    Accumulator lossless_ratio;
    Accumulator dct55_ratio, dct55_q;
    for (int f = 0; f < proxy.frameCount(); ++f) {
        const ImageU8 frame = proxy.frame(f).image;
        lossless_ratio.sample(LosslessCodec::encode(frame).ratio());
        EncodedImage enc;
        const ImageU8 back = DctCodec::roundTrip(frame, 55, &enc);
        dct55_ratio.sample(enc.ratio());
        dct55_q.sample(msSsim(toFloat(frame), toFloat(back)));
    }

    const double b1_fps = model.commFps(VrBlock::Preprocess);
    TableWriter table({"stream", "MB/frame", "comm FPS", ">=30?",
                       "quality"});
    table.addRow({"B1 raw", TableWriter::num(
                                g.outputBytes(VrBlock::Preprocess).mb(), 1),
                  TableWriter::num(b1_fps, 1), b1_fps >= 30 ? "yes" : "no",
                  "exact"});
    const double ll_fps = b1_fps * lossless_ratio.mean();
    table.addRow(
        {"B1 + lossless codec",
         TableWriter::num(g.outputBytes(VrBlock::Preprocess).mb() /
                              lossless_ratio.mean(),
                          1),
         TableWriter::num(ll_fps, 1), ll_fps >= 30 ? "YES" : "no",
         "exact"});
    const double dct_fps = b1_fps * dct55_ratio.mean();
    table.addRow(
        {"B1 + DCT q55",
         TableWriter::num(g.outputBytes(VrBlock::Preprocess).mb() /
                              dct55_ratio.mean(),
                          1),
         TableWriter::num(dct_fps, 1), dct_fps >= 30 ? "YES" : "no",
         (TableWriter::num(100.0 * dct55_q.mean(), 1) + "% MS-SSIM")});
    table.print("can compression rescue the offload-early design?");

    std::printf("measured ratios: lossless %.2fx, DCT q55 %.2fx.\n",
                lossless_ratio.mean(), dct55_ratio.mean());
    std::printf("caveat (the paper's): lossy artifacts feed B3's "
                "matcher; early lossy compression risks depth quality, "
                "so the 30 FPS 'YES' above buys real-time at a quality "
                "risk the all-in-camera design avoids.\n");
}

} // namespace

int
main()
{
    banner("Extension (Section II)",
           "compression as an optional in-camera block");
    paperSays("'compression can be treated as an optional block in "
              "in-camera processing pipelines' — not evaluated there; "
              "evaluated here");
    faCompression();
    vrCompression();
    return 0;
}
