/**
 * @file
 * Ablation — detector parameters vs full-system energy (FA camera).
 *
 * The paper's conclusion: "design parameters for individual
 * accelerators can influence the full-system execution behavior." This
 * bench makes that concrete for case study 1: the VJ adaptive step
 * size (the Fig. 4c knob) simultaneously sets the face-detection
 * block's own energy (windows scanned), the NN stage's duty cycle
 * (candidates forwarded), and the application's visit miss rate. The
 * energy-optimal setting is *not* the accuracy-optimal one — the
 * whole-pipeline view is what picks the right point.
 */

#include "bench_common.hh"
#include "common/table.hh"
#include "fa/auth.hh"
#include "fa/fa_pipeline.hh"
#include "image/ops.hh"
#include "vj/train.hh"

using namespace incam;

int
main()
{
    banner("Ablation", "VJ scan density vs full-system energy (FA)");
    paperSays("'design parameters for individual accelerators can "
              "influence the full-system execution behavior' (§V)");

    SecurityVideoConfig vc;
    vc.frames = 120;
    vc.visits = 5;
    vc.enrolled_fraction = 0.6;
    vc.seed = 99;
    const SecurityVideo video(vc);

    FaceDatasetConfig dc;
    dc.identities = 24;
    dc.per_identity = 20;
    dc.size = 20;
    dc.hard = false;
    dc.framing_jitter = 0.15;
    dc.seed = 7;
    TrainConfig tc;
    tc.epochs = 120;
    const AuthNet auth =
        trainAuthNet(FaceDataset::generate(dc), vc.enrolled_identity,
                     MlpTopology{{400, 8, 1}}, tc);

    Rng rng(31);
    std::vector<ImageU8> positives;
    for (int i = 0; i < 250; ++i) {
        positives.push_back(toU8(renderFace(
            identityParams(rng.below(40)), easyVariation(rng), 20)));
    }
    const SecurityVideo *vptr = &video;
    const NegativeSource negatives = [vptr](Rng &r) {
        if (r.chance(0.5)) {
            return toU8(renderDistractor(r.next(), 20));
        }
        const VideoFrame f = vptr->frame(static_cast<int>(r.below(40)));
        const int side = 20 + static_cast<int>(r.below(40));
        const int x = static_cast<int>(r.below(f.image.width() - side));
        const int y = static_cast<int>(r.below(f.image.height() - side));
        return resizeNearest(crop(f.image, Rect{x, y, side, side}), 20,
                             20);
    };
    CascadeTrainConfig ctc;
    ctc.max_features = 700;
    ctc.max_stages = 6;
    ctc.max_stumps_per_stage = 12;
    ctc.negatives_per_stage = 400;
    ctc.seed = 11;
    const Cascade cascade = CascadeTrainer(ctc).train(positives, negatives);

    TableWriter table({"adaptive step", "VJ E/frame (uJ)",
                       "NN infs", "total E/frame (uJ)",
                       "visit miss %", "false visits"});
    for (double frac : {0.08, 0.12, 0.20, 0.30}) {
        FaConfig cfg;
        cfg.detector.min_neighbors = 1;
        cfg.detector.adaptive_step = true;
        cfg.detector.adaptive_frac = frac;
        FaCameraSim sim(cfg, &cascade, auth.net);
        const FaRunResult res = sim.run(video);
        const double vj_per_frame =
            res.counts.vj_frames
                ? res.energy.facedetect.uj() /
                      static_cast<double>(res.counts.vj_frames)
                : 0.0;
        table.addRow(
            {TableWriter::num(frac, 2),
             TableWriter::num(vj_per_frame, 2),
             TableWriter::num(
                 static_cast<long long>(res.counts.nn_inferences)),
             TableWriter::num(res.perFrame().uj(), 2),
             TableWriter::num(100.0 * res.visitMissRate(), 1),
             TableWriter::num(
                 static_cast<long long>(res.false_visits))});
    }
    table.print("scan density: detector energy vs application quality");
    std::printf("\ndenser scans burn VJ energy and surface more NN "
                "candidates; coarser scans are cheaper until they start "
                "missing whole visits. Picking this knob from Fig. 4c "
                "accuracy alone would overspend energy — the full-system "
                "view (this table) is the paper's point.\n");
    return 0;
}
