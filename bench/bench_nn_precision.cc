/**
 * @file
 * E3 — Section III-A "NN numerical accuracy tradeoffs".
 *
 * Two precision knobs on the 400-8-1 accelerator: (1) the 256-entry
 * sigmoid LUT vs a precise activation, and (2) datapath width in
 * {16, 8, 4} bits. Paper findings to reproduce:
 *   - the LUT approximation is accuracy-neutral;
 *   - 16-bit and 8-bit lose only ~0.4% accuracy vs float; 4-bit loses
 *     significantly more (>1%);
 *   - 16 -> 8 bits cuts accelerator power by ~41% at 8 PEs, making
 *     8-bit the selected energy/accuracy point.
 */

#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "fa/auth.hh"
#include "nn/eval.hh"
#include "snnap/accelerator.hh"
#include "snnap/energy.hh"

using namespace incam;

int
main()
{
    banner("E3 (Section III-A text)",
           "datapath width & sigmoid-LUT accuracy/power study");
    paperSays("LUT sigmoid negligible; 16b/8b lose ~0.4% accuracy, 4b "
              ">1%; 8b saves 41% power vs 16b at 8 PEs");

    FaceDatasetConfig dc;
    dc.identities = 30;
    dc.per_identity = 24;
    dc.size = 20;
    dc.seed = 7;
    const FaceDataset ds = FaceDataset::generate(dc);
    TrainConfig tc;
    tc.epochs = 150;
    const AuthNet auth = trainAuthNet(ds, 0, MlpTopology{{400, 8, 1}}, tc);

    FaceDataset train_ds, test_ds;
    ds.split(0.9, train_ds, test_ds);
    const TrainSet test_set = buildAuthSet(test_ds, 0);

    const Confusion float_ref =
        evaluateBinary(predictorOf(auth.net), test_set);
    std::printf("float reference accuracy: %.2f%% (err %.2f%%)\n",
                100.0 * float_ref.accuracy(),
                100.0 * float_ref.errorRate());

    struct Variant
    {
        const char *name;
        int width;
        bool lut;
    };
    const std::vector<Variant> variants = {
        {"16-bit + LUT", 16, true}, {"16-bit precise", 16, false},
        {"8-bit + LUT", 8, true},   {"8-bit precise", 8, false},
        {"4-bit + LUT", 4, true},
    };

    TableWriter table({"datapath", "acc bits", "accuracy %",
                       "loss vs float (pp)", "E/inf (nJ)",
                       "busy power (uW)", "power vs 16b"});

    double p16 = 0.0;
    for (const Variant &v : variants) {
        QuantConfig qc;
        qc.width = v.width;
        qc.lut_sigmoid = v.lut;
        const QuantizedMlp qnet(auth.net, qc);
        const Confusion c =
            evaluateBinary(predictorOf(qnet), test_set);

        SnnapConfig sc;
        sc.num_pes = 8;
        SnnapAccelerator accel(qnet, sc);
        std::vector<int64_t> zeros(400, 0);
        accel.runRaw(zeros);
        const SnnapEnergyModel em({}, sc, v.width);
        const double power_uw =
            em.averagePower(accel.lastStats()).uw();
        if (v.width == 16 && v.lut) {
            p16 = power_uw;
        }
        const std::string rel =
            p16 > 0.0 ? TableWriter::num(100.0 * power_uw / p16, 1) + "%"
                      : "-";
        table.addRow({v.name, TableWriter::num(qc.accBits()),
                      TableWriter::num(100.0 * c.accuracy(), 2),
                      TableWriter::num(100.0 * (float_ref.accuracy() -
                                                c.accuracy()),
                                       2),
                      TableWriter::num(
                          em.energy(accel.lastStats()).nj(), 2),
                      TableWriter::num(power_uw, 1), rel});
    }
    table.print("precision variants of the 400-8-1 accelerator (8 PEs)");
    std::printf("\nnote: our float-trained net degrades catastrophically "
                "at 4 bits (the paper reports 'over 1%%'); the ordering\n"
                "16b ~ 8b >> 4b and the ~41%% power saving at 8b are the "
                "reproduced results (see EXPERIMENTS.md).\n");
    return 0;
}
