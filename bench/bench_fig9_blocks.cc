/**
 * @file
 * E7 — Fig. 9: "Computation distribution and output data size for
 * blocks in a VR video pipeline."
 *
 * Prints each block's output size and its share of CPU compute time at
 * the full 16-camera scale, plus the per-2-camera view the figure is
 * captioned with. Paper reference: compute shares 5% / 20% / 70% / 5%
 * for B1..B4; B2's output is the largest (the data-expanding stage)
 * and B4's the smallest.
 */

#include "bench_common.hh"
#include "common/table.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

int
main()
{
    banner("E7 (Fig. 9)", "per-block compute share and output size");
    paperSays("compute 5/20/70/5% for B1..B4; B2 output largest, B4 "
              "smallest (2-of-16-camera view)");

    const VrPipelineModel model;
    const VrGeometry &g = model.geometry();

    const struct
    {
        VrBlock block;
        const char *name;
        double paper_share;
    } blocks[] = {
        {VrBlock::Sensor, "sensor", 0.0},
        {VrBlock::Preprocess, "B1 pre-processing", 5.0},
        {VrBlock::Align, "B2 image alignment", 20.0},
        {VrBlock::Depth, "B3 depth estimation", 70.0},
        {VrBlock::Stitch, "B4 image stitching", 5.0},
    };

    TableWriter table({"block", "output MB (16 cam)", "output MB (2 cam)",
                       "compute share %", "paper share %"});
    for (const auto &b : blocks) {
        const DataSize out = model.outputBytes(b.block);
        table.addRow({b.name, TableWriter::num(out.mb(), 1),
                      TableWriter::num(out.mb() / 8.0, 1),
                      b.block == VrBlock::Sensor
                          ? std::string("-")
                          : TableWriter::num(
                                100.0 * model.cpuShare(b.block), 1),
                      b.block == VrBlock::Sensor
                          ? std::string("-")
                          : TableWriter::num(b.paper_share, 0)});
    }
    table.print("Fig. 9: block outputs and CPU compute distribution");

    std::printf("\ntotal CPU work per frame set: %.1f Gops; B2 expands "
                "the data %.2fx before B3 shrinks it.\n",
                g.totalCpuOps() / 1e9,
                g.outputBytes(VrBlock::Align).b() /
                    g.outputBytes(VrBlock::Sensor).b());
    return 0;
}
