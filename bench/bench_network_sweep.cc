/**
 * @file
 * E10 — Section IV-C's network sensitivity analysis.
 *
 * Sweeps the uplink bandwidth and reports, for each rate, the
 * communication FPS at every offload cut and the best achievable
 * configuration. Paper reference: "at a hypothetical ultra-high-
 * throughput network link of 400-Gb Ethernet, the 16-camera output can
 * be uploaded at 395 FPS, reducing the efficiency incentive for
 * in-camera processing" (our frame-set calibration yields ~250 FPS —
 * same conclusion; see EXPERIMENTS.md for the reconciliation).
 */

#include <cmath>

#include "bench_common.hh"
#include "common/table.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

int
main()
{
    banner("E10 (Section IV-C)", "uplink bandwidth sensitivity");
    paperSays("as networks speed up, offloading right off the sensor "
              "becomes viable (395 FPS at 400 GbE)");

    TableWriter table({"uplink", "raw sensor FPS", "after B3 FPS",
                       "after B4 FPS", "best real-time config"});

    for (double gbps : {5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
        VrPipelineModel model(defaultVrGeometry(),
                              Bandwidth::gigabitsPerSec(gbps));
        // Find the *shortest* in-camera prefix that is real-time —
        // less in-camera hardware is cheaper to build.
        std::string best = "none";
        const auto rows = model.figure10();
        for (const auto &row : rows) {
            if (row.realtime) {
                best = row.name;
                break; // figure10 is ordered short-to-long prefixes
            }
        }
        table.addRow({TableWriter::num(gbps, 0) + " Gb/s",
                      TableWriter::num(model.commFps(VrBlock::Sensor), 1),
                      TableWriter::num(model.commFps(VrBlock::Depth), 1),
                      TableWriter::num(model.commFps(VrBlock::Stitch), 1),
                      best});
    }
    table.print("offload feasibility vs link bandwidth (30 FPS target)");

    const VrPipelineModel base;
    std::printf("\nraw-sensor streaming needs >= %.1f Gb/s for 30 FPS; "
                "beyond that the in-camera incentive erodes.\n",
                base.sensorOffloadBandwidth().gbps());
    return 0;
}
