/**
 * @file
 * E2 — Section III-A "NN microarchitecture" geometry sweep.
 *
 * Fixes the network at 400-8-1 / 8-bit / 30 MHz / 0.9 V (the paper's
 * operating point) and sweeps the PE count. The paper: "We find an
 * energy-optimal point at 8 PEs: any lower number of PEs introduces
 * scheduling inefficiencies, increasing energy consumption; too many
 * PEs results in underutilized resources and reduced parallelism for
 * the narrow network."
 */

#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "fa/auth.hh"
#include "snnap/accelerator.hh"
#include "snnap/energy.hh"

using namespace incam;

int
main()
{
    banner("E2 (Section III-A text)",
           "SNNAP PE-count sweep at 30 MHz / 0.9 V / 8-bit");
    paperSays("energy-optimal at 8 PEs; fewer PEs -> scheduling "
              "inefficiency, more PEs -> underutilization");

    FaceDatasetConfig dc;
    dc.identities = 24;
    dc.per_identity = 20;
    dc.size = 20;
    dc.seed = 7;
    const FaceDataset ds = FaceDataset::generate(dc);
    TrainConfig tc;
    tc.epochs = 120;
    const AuthNet auth = trainAuthNet(ds, 0, MlpTopology{{400, 8, 1}}, tc);

    QuantConfig qc;
    qc.width = 8;
    const QuantizedMlp qnet(auth.net, qc);

    TableWriter table({"PEs", "cycles", "t/inf (us)", "E/inf (nJ)",
                       "busy power (uW)", "idle PE-cycles",
                       "throughput (inf/s)"});

    double best_energy = 1e30;
    int best_pes = 0;
    for (int pes : {1, 2, 4, 6, 8, 10, 12, 16, 24, 32}) {
        SnnapConfig sc;
        sc.num_pes = pes;
        SnnapAccelerator accel(qnet, sc);
        std::vector<int64_t> zeros(400, 0);
        accel.runRaw(zeros);
        const SnnapStats &st = accel.lastStats();
        const SnnapEnergyModel em({}, sc, qc.width);
        const Energy e = em.energy(st);
        const Time t = st.execTime(sc.clock);
        if (e.j() < best_energy) {
            best_energy = e.j();
            best_pes = pes;
        }
        table.addRow(
            {TableWriter::num(pes),
             TableWriter::num(static_cast<long long>(st.total_cycles)),
             TableWriter::num(t.usec(), 2), TableWriter::num(e.nj(), 2),
             TableWriter::num(em.averagePower(st).uw(), 1),
             TableWriter::num(static_cast<long long>(st.idle_pe_cycles)),
             TableWriter::num(1.0 / t.sec(), 0)});
    }
    table.print("400-8-1 inference vs PE count");
    std::printf("\nmeasured energy-optimal geometry: %d PEs "
                "(paper: 8 PEs)\n", best_pes);
    return 0;
}
