/**
 * @file
 * E6 — Fig. 7: "Using a smaller bilateral grid is cheaper to compute
 * but degrades the quality of the output depth map, even at high image
 * resolutions."
 *
 * Sweeps the pixels-per-grid-vertex knob (4 .. 64, as in the paper)
 * for three input resolutions standing in for the 5/7/8 MP sensors,
 * running real BSSA at proxy scale and reporting MS-SSIM of the depth
 * map against ground truth. The x-axis "Bilateral Grid Size (GB)" is
 * computed analytically at full scale the way the paper counts it
 * (grid x disparity candidates x camera pairs).
 *
 * Shapes to reproduce: quality rises and saturates with grid size;
 * input resolution matters much less than cell size.
 */

#include "bench_common.hh"
#include "bilateral/stereo.hh"
#include "common/table.hh"
#include "image/metrics.hh"
#include "vr/geometry.hh"
#include "workload/stereo_scene.hh"

using namespace incam;

namespace {

/** Proxy resolutions standing in for the paper's 5/7/8 MP frames. */
struct Resolution
{
    const char *label;
    int w, h;
    int full_w, full_h; ///< the megapixel geometry it stands for
};

double
depthQuality(const StereoPair &scene, double cell, int range_bins)
{
    BssaConfig cfg;
    cfg.max_disparity = 16;
    cfg.cell_spatial = cell;
    cfg.range_bins = range_bins;
    cfg.solver_iterations = 12;
    const BssaResult res = BssaStereo(cfg).compute(scene.left,
                                                   scene.right);
    ImageF got = res.disparity;
    ImageF want = scene.disparity;
    for (float &v : got) {
        v /= 16.0f;
    }
    for (float &v : want) {
        v /= 16.0f;
    }
    return msSsim(want, got);
}

} // namespace

int
main()
{
    banner("E6 (Fig. 7)", "depth quality vs bilateral grid size");
    paperSays("quality (MS-SSIM) degrades as the grid shrinks; "
              "resolution is less impactful than grid size");

    const Resolution resolutions[] = {
        {"5 MP", 288, 192, 2880, 1920},
        {"7 MP", 342, 228, 3420, 2280},
        {"8 MP", 384, 216, 3840, 2160},
    };

    TableWriter table({"px/vertex", "resolution", "grid GB (full scale)",
                       "proxy vertices", "MS-SSIM %"});

    for (const Resolution &res : resolutions) {
        StereoSceneConfig scfg;
        scfg.width = res.w;
        scfg.height = res.h;
        scfg.max_disparity = 14;
        scfg.layers = 5;
        scfg.seed = 77;
        const StereoPair scene = makeStereoPair(scfg);

        for (int cell : {4, 8, 16, 32, 64}) {
            // Range bins shrink with the same factor (the paper scales
            // all three grid dimensions together).
            const int range_bins = std::max(2, 256 / (cell * 2));

            // Full-scale grid bytes, counted as the paper's x-axis:
            // per-pair grid x disparity candidates x 16 pairs.
            VrGeometry g = defaultVrGeometry();
            g.rect_w = res.full_w;
            g.rect_h = res.full_h;
            g.cell_spatial = cell;
            g.range_bins = range_bins;
            const double grid_gb = g.aggregateGridBytes().gb();

            const double q = depthQuality(scene, cell, range_bins);
            const BilateralGrid proxy(res.w, res.h, cell, range_bins);
            table.addRow({TableWriter::num(cell), res.label,
                          TableWriter::num(grid_gb, 2),
                          TableWriter::num(static_cast<long long>(
                              proxy.vertexCount())),
                          TableWriter::num(100.0 * q, 1)});
        }
    }
    table.print("Fig. 7: quality vs grid size across resolutions");
    std::printf("\nread vertically: at fixed px/vertex the three "
                "resolutions score similarly;\nread horizontally: "
                "shrinking the grid degrades every resolution.\n");
    return 0;
}
