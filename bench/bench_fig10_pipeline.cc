/**
 * @file
 * E8 — Fig. 10: "Pipeline configurations with different bilateral
 * smoothing implementations (CPU, GPU, FPGA), and resulting upload
 * rates."
 *
 * Evaluates the nine configurations of the figure on the 25 GbE
 * uplink: sensor-only, +B1, +B1+B2, then B3 on {CPU, GPU, FPGA}, then
 * +B4 on the same platform. Paper reference values (FPS): comm 15.8 /
 * 15.8 / 3.95 / 11.2 / 31.6; B3 compute 0.09 (CPU), 5.27 (GPU), 31.6
 * (FPGA). "Only the full pipeline with FPGA acceleration can meet a
 * 30 FPS upload requirement."
 */

#include <cmath>

#include "bench_common.hh"
#include "common/table.hh"
#include "vr/pipeline_model.hh"

using namespace incam;

namespace {

std::string
fpsCell(double v)
{
    if (std::isinf(v)) {
        return "inf";
    }
    return TableWriter::num(v, 2);
}

} // namespace

int
main()
{
    banner("E8 (Fig. 10)",
           "nine pipeline configurations on the 25 GbE uplink");
    paperSays("comm: 15.8/15.8/3.95/11.2/31.6; B3 compute C/G/F = "
              "0.09/5.27/31.6; only S+B1+B2+B3(F)+B4(F) is real-time");

    const VrPipelineModel model;
    const double paper_comm[] = {15.8, 15.8, 3.95, 11.2, 11.2,
                                 11.2, 31.6, 31.6, 31.6};
    const double paper_compute[] = {-1, -1, -1, 0.09, 5.27,
                                    31.6, 0.09, 5.27, 31.6};

    TableWriter table({"configuration", "compute FPS", "comm FPS",
                       "total FPS", ">=30?", "paper compute",
                       "paper comm"});
    const auto rows = model.figure10();
    for (size_t i = 0; i < rows.size(); ++i) {
        const VrConfigRow &row = rows[i];
        table.addRow(
            {row.name, fpsCell(row.compute_fps),
             TableWriter::num(row.comm_fps, 2),
             TableWriter::num(row.total_fps, 2),
             row.realtime ? "REAL-TIME" : "no",
             paper_compute[i] < 0
                 ? std::string("(>30)")
                 : TableWriter::num(paper_compute[i], 2),
             TableWriter::num(paper_comm[i], 2)});
    }
    table.print("Fig. 10: computation vs communication per configuration");

    std::printf("\nFPGA speedup on B3: %.0fx over CPU, %.1fx over GPU "
                "(paper: 'up to 10x in computation time').\n",
                model.blockComputeFps(VrBlock::Depth, VrImpl::Fpga) /
                    model.blockComputeFps(VrBlock::Depth, VrImpl::Cpu),
                model.blockComputeFps(VrBlock::Depth, VrImpl::Fpga) /
                    model.blockComputeFps(VrBlock::Depth, VrImpl::Gpu));
    return 0;
}
